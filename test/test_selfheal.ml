(* Scenario tests for the self-healing data plane: the intent write-ahead
   journal (NM crash/restart semantics), the monitor's reconciliation loop
   (probe -> drift-check -> resync/re-achieve/escalate ladder) and the
   data-plane fault injection that drives them (scheduled link flaps,
   behind-the-NM state deletion, hard cuts). *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let path_devices (p : Path_finder.path) =
  List.sort_uniq compare
    (List.map (fun (v : Path_finder.visit) -> v.Path_finder.v_mod.Ids.dev) p.Path_finder.visits)

(* The structural part of a show_actual report, as the monitor sees it:
   per-module state keys, minus transient pending[..] negotiation state. *)
let structural_keys nm dev =
  match Nm.show_actual nm dev with
  | None -> Alcotest.failf "no showActual answer from %s" dev
  | Some state ->
      List.concat_map
        (fun ((m : Ids.t), kvs) ->
          List.filter_map
            (fun (k, _) ->
              if String.length k >= 8 && String.sub k 0 8 = "pending[" then None
              else Some (Ids.qualified m ^ "/" ^ k))
            kvs)
        state
      |> List.sort_uniq compare

(* --- journal codec and replay -------------------------------------------------- *)

let test_journal_roundtrip () =
  let goal = Scenarios.vpn_goal () in
  let specs =
    [
      Intent.Connect goal;
      Intent.Address { target = Ids.v "IP" "r2" "id-R2"; addr = "204.9.100.1"; plen = 30 };
      Intent.Rate { owner = Ids.v "IP" "g" "id-A"; pipe_id = "P1"; rate_kbps = 512 };
    ]
  in
  List.iter
    (fun spec ->
      let back = Intent.spec_of_sexp (Intent.spec_to_sexp spec) in
      check tbool "spec survives the sexp codec" true (Intent.spec_equal spec back))
    specs;
  List.iteri
    (fun i e ->
      check tbool
        (Printf.sprintf "entry %d survives the sexp codec" i)
        true
        (Intent.entry_of_sexp (Intent.entry_to_sexp e) = e))
    [ Intent.Begin (1, Intent.Connect goal); Intent.Commit 1; Intent.Retire 1 ]

let test_journal_replay () =
  let j = Intent.journal () in
  let goal = Scenarios.vpn_goal () in
  Intent.append j (Intent.Begin (1, Intent.Connect goal));
  Intent.append j (Intent.Commit 1);
  Intent.append j
    (Intent.Begin (2, Intent.Rate { owner = Ids.v "IP" "g" "id-A"; pipe_id = "P0"; rate_kbps = 64 }));
  Intent.append j (Intent.Retire 2);
  Intent.append j (Intent.Begin (3, Intent.Address { target = Ids.v "IP" "i" "id-B"; addr = "1.2.3.4"; plen = 24 }));
  (* the durable representation round-trips *)
  let j2 = Intent.journal_of_string (Intent.journal_to_string j) in
  check tbool "journal survives serialisation" true (Intent.entries j2 = Intent.entries j);
  (* replay: Commit promotes, Retire drops, the rest stay pending *)
  (match Intent.replay j2 with
  | [ a; b ] ->
      check tint "first live intent" 1 a.Intent.id;
      check tbool "committed replays as active" true (a.Intent.status = Intent.Active);
      check tint "second live intent" 3 b.Intent.id;
      check tbool "uncommitted replays as pending" true (b.Intent.status = Intent.Pending)
  | l -> Alcotest.failf "expected 2 live intents after replay, got %d" (List.length l));
  check tint "ids continue after the highest journalled" 4 (Intent.next_id j2);
  check tint "empty journal starts at 1" 1 (Intent.next_id (Intent.journal ()))

(* --- the acceptance scenario: self-heal around a flapping core link ------------ *)

let test_diamond_selfheal_on_flap () =
  let d = Scenarios.build_diamond () in
  let nm = d.Scenarios.dnm in
  let chosen_core path =
    List.find (fun dev -> dev = "id-B1" || dev = "id-B2") (path_devices path)
  in
  let chosen =
    match Nm.achieve nm d.Scenarios.dgoal with
    | Ok (_, path, _) -> chosen_core path
    | Error e -> Alcotest.failf "diamond achieve: %s" e
  in
  check tbool "initially reachable" true (Scenarios.diamond_reachable d);
  (* the chosen core's uplink starts flapping: down at 1.2s for 0.8s, up
     for 1.2s, twice. Scheduled on the event queue -- from here on the
     monitor runs with zero manual intervention. *)
  let seg_name = if chosen = "id-B1" then "A--B1" else "A--B2" in
  let seg = Netsim.Net.find_segment_exn d.Scenarios.dtb.Netsim.Testbeds.dia_net seg_name in
  Netsim.Link.flap ~cycles:2 seg ~first_down_ns:1_200_000_000L ~down_ns:800_000_000L
    ~up_ns:1_200_000_000L;
  let mon = Monitor.create nm in
  Monitor.run mon ~ticks:12 (* ~6 virtual seconds: covers both flap cycles *);
  check tbool "reachable after self-heal" true (Scenarios.diamond_reachable d);
  check tint "exactly one repair: restoring the link caused no oscillation" 1
    (Monitor.repairs mon);
  check tint "no escalation" 0 (Monitor.escalations mon);
  check tint "the link flapped twice" 2 (Netsim.Link.flaps seg);
  check tbool "cut drops were counted per cause" true (Netsim.Link.drop_count seg "cut" > 0);
  (* repair happened within a bounded delay of the first cut *)
  (match List.find_opt (fun e -> contains_sub e.Monitor.ev_what "repaired") (Monitor.events mon) with
  | None -> Alcotest.fail "no repair event logged"
  | Some e ->
      check tbool "repaired within one virtual second of the cut" true
        (e.Monitor.ev_time <= 2_200_000_000L));
  (* the intent ended up healthy, on a path off the flapping core *)
  match Nm.intents nm with
  | [ intent ] -> (
      check tbool "intent healthy" true (intent.Intent.status = Intent.Active);
      match intent.Intent.script with
      | Some s ->
          check tbool "rerouted off the flapping core" false
            (List.mem chosen (path_devices s.Script_gen.path))
      | None -> Alcotest.fail "intent lost its script")
  | l -> Alcotest.failf "expected 1 intent, got %d" (List.length l)

(* --- NM crash mid-achieve: restart from the write-ahead journal ---------------- *)

let test_restart_from_journal_mid_achieve () =
  (* the reference: what an uninterrupted NM converges to *)
  let clean = Scenarios.build_vpn () in
  (match Nm.achieve clean.Scenarios.nm clean.Scenarios.goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean achieve: %s" e);
  let clean_keys =
    List.map (fun dev -> (dev, structural_keys clean.Scenarios.nm dev)) clean.Scenarios.scope
  in
  (* the faulty run: C drops off the management channel mid-achieve, so the
     journal holds Begin but no Commit when the NM "crashes" *)
  let v = Scenarios.build_vpn () in
  Mgmt.Faults.partition v.Scenarios.faults "id-C";
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ -> Alcotest.fail "achieve should fail with C partitioned"
  | Error e -> check tbool "error names the dead device" true (contains_sub e "id-C"));
  let stored = Intent.journal_to_string (Nm.journal v.Scenarios.nm) in
  check tbool "journal holds the write-ahead entry" true (contains_sub stored "begin");
  check tbool "nothing was committed" false (contains_sub stored "commit");
  (* the partition heals and a fresh NM restarts from stable storage *)
  Mgmt.Faults.heal v.Scenarios.faults "id-C";
  let nm2 =
    Nm.create ~transport:v.Scenarios.transport ~journal:(Intent.journal_of_string stored)
      ~chan:v.Scenarios.chan ~net:v.Scenarios.tb.Netsim.Testbeds.vpn_net
      ~my_id:Scenarios.nm_station_id ()
  in
  (match Nm.intents nm2 with
  | [ i ] -> check tbool "replayed as pending" true (i.Intent.status = Intent.Pending)
  | l -> Alcotest.failf "expected 1 replayed intent, got %d" (List.length l));
  Scenarios.vpn_adopt v nm2;
  Nm.recover nm2;
  check tbool "VPN works after restart" true (Scenarios.vpn_reachable v);
  (* the recovered configuration is the clean one: nothing duplicated,
     nothing missing *)
  List.iter
    (fun (dev, keys) ->
      check
        Alcotest.(list string)
        ("same structural state at " ^ dev)
        keys (structural_keys nm2 dev))
    clean_keys;
  match Nm.intents nm2 with
  | [ i ] -> check tbool "intent active after recovery" true (i.Intent.status = Intent.Active)
  | l -> Alcotest.failf "recovery duplicated intents: %d" (List.length l)

(* --- NM restart after a committed achieve: recovery is idempotent -------------- *)

let test_restart_from_journal_committed () =
  let v = Scenarios.build_vpn () in
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve: %s" e);
  check tbool "reachable before restart" true (Scenarios.vpn_reachable v);
  let before = List.map (fun dev -> (dev, structural_keys v.Scenarios.nm dev)) v.Scenarios.scope in
  let stored = Intent.journal_to_string (Nm.journal v.Scenarios.nm) in
  check tbool "achieve was committed" true (contains_sub stored "commit");
  let nm2 =
    Nm.create ~transport:v.Scenarios.transport ~journal:(Intent.journal_of_string stored)
      ~chan:v.Scenarios.chan ~net:v.Scenarios.tb.Netsim.Testbeds.vpn_net
      ~my_id:Scenarios.nm_station_id ()
  in
  (match Nm.intents nm2 with
  | [ i ] -> check tbool "replayed as active" true (i.Intent.status = Intent.Active)
  | l -> Alcotest.failf "expected 1 replayed intent, got %d" (List.length l));
  Scenarios.vpn_adopt v nm2;
  Nm.recover nm2 (* re-executes the script over live device state *);
  check tbool "reachable after restart" true (Scenarios.vpn_reachable v);
  check tint "no errors from re-execution" 0 (List.length (Nm.errors nm2));
  (* idempotent agents: re-applying the script duplicated nothing *)
  List.iter
    (fun (dev, keys) ->
      check
        Alcotest.(list string)
        ("state unchanged at " ^ dev)
        keys (structural_keys nm2 dev))
    before

(* --- drift: state deleted behind the NM's back is resynced --------------------- *)

let test_monitor_resyncs_drift () =
  let v = Scenarios.build_vpn () in
  let nm = v.Scenarios.nm in
  let script =
    match Nm.achieve nm v.Scenarios.goal with
    | Ok (_, _, s) -> s
    | Error e -> Alcotest.failf "achieve: %s" e
  in
  let mon = Monitor.create nm in
  Monitor.run mon ~ticks:2 (* healthy ticks: baseline the drift check *);
  check tint "no resync while healthy" 0 (Monitor.resyncs mon);
  (* an operator deletes a pipe of the transit device directly on the box *)
  let owner, pid =
    match
      List.find_map
        (function
          | Primitive.Create_pipe spec when spec.Primitive.top.Ids.dev = "id-B" ->
              Some (spec.Primitive.top, spec.Primitive.pipe_id)
          | _ -> None)
        script.Script_gen.prims
    with
    | Some x -> x
    | None -> Alcotest.fail "no pipe on the transit device in the script"
  in
  let agent_b = List.assoc "B" v.Scenarios.agents in
  (match Agent.find_module agent_b owner with
  | Some m -> m.Module_impl.delete_pipe pid
  | None -> Alcotest.failf "module %s not found on B" (Ids.qualified owner));
  Monitor.run mon ~ticks:4;
  check tbool "drift was detected and resynced" true (Monitor.resyncs mon >= 1);
  check tbool "VPN reachable again" true (Scenarios.vpn_reachable v);
  (match Nm.intents nm with
  | [ i ] -> check tbool "intent healthy after resync" true (i.Intent.status = Intent.Active)
  | _ -> Alcotest.fail "unexpected intent set");
  (* convergence, not oscillation: further ticks stay quiet *)
  let r = Monitor.resyncs mon in
  Monitor.run mon ~ticks:3;
  check tint "no further resyncs once converged" r (Monitor.resyncs mon)

(* --- escalation: unrepairable faults are bounded and surfaced ------------------ *)

let test_monitor_escalates_then_revives () =
  let v = Scenarios.build_vpn () in
  let nm = v.Scenarios.nm in
  (match Nm.achieve nm v.Scenarios.goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve: %s" e);
  (* the only physical core link dies: every candidate path is dead, but
     the management channel (out-of-band) still works *)
  let seg = Netsim.Net.find_segment_exn v.Scenarios.tb.Netsim.Testbeds.vpn_net "A--B" in
  Netsim.Link.cut seg;
  let cfg =
    {
      Monitor.interval_ns = 200_000_000L;
      probe_slack_ns = 50_000_000L;
      max_repair_attempts = 2;
    }
  in
  let mon = Monitor.create ~config:cfg nm in
  Monitor.run mon ~ticks:8;
  check tint "escalated exactly once" 1 (Monitor.escalations mon);
  check tint "repairs were bounded" 0 (Monitor.repairs mon);
  (match Nm.intents nm with
  | [ i ] -> check tbool "intent failed" true (i.Intent.status = Intent.Failed)
  | _ -> Alcotest.fail "unexpected intent set");
  check tbool "failure in the NM error report" true
    (List.exists (fun (who, _) -> who = "intent-1") (Nm.errors nm));
  (* the wire is plugged back in: the next healthy probe revives the intent
     without operator involvement *)
  Netsim.Link.restore seg;
  Monitor.run mon ~ticks:3;
  (match Nm.intents nm with
  | [ i ] -> check tbool "intent revived after restore" true (i.Intent.status = Intent.Active)
  | _ -> Alcotest.fail "unexpected intent set");
  check tbool "VPN reachable again" true (Scenarios.vpn_reachable v)

(* --- teardown retires the journalled intent ------------------------------------ *)

let test_teardown_retires_intent () =
  let v = Scenarios.build_vpn () in
  let nm = v.Scenarios.nm in
  let script =
    match Nm.achieve nm v.Scenarios.goal with
    | Ok (_, _, s) -> s
    | Error e -> Alcotest.failf "achieve: %s" e
  in
  Nm.teardown nm script;
  (match Nm.intents nm with
  | [ i ] -> check tbool "intent retired" true (i.Intent.status = Intent.Retired)
  | _ -> Alcotest.fail "unexpected intent set");
  check tbool "retire journalled" true
    (contains_sub (Intent.journal_to_string (Nm.journal nm)) "retire");
  (* a restarted NM does not resurrect the torn-down goal *)
  let nm2 =
    Nm.create ~journal:(Intent.journal_of_string (Intent.journal_to_string (Nm.journal nm)))
      ~chan:v.Scenarios.chan ~net:v.Scenarios.tb.Netsim.Testbeds.vpn_net
      ~my_id:Scenarios.nm_station_id ()
  in
  check tint "retired intents are not replayed" 0 (List.length (Nm.intents nm2))

let () =
  Alcotest.run "selfheal"
    [
      ( "journal",
        [
          Alcotest.test_case "sexp roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "replay semantics" `Quick test_journal_replay;
          Alcotest.test_case "teardown retires" `Quick test_teardown_retires_intent;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "flapping core self-heals" `Quick test_diamond_selfheal_on_flap;
          Alcotest.test_case "drift resync" `Quick test_monitor_resyncs_drift;
          Alcotest.test_case "escalate then revive" `Quick test_monitor_escalates_then_revives;
        ] );
      ( "restart",
        [
          Alcotest.test_case "crash mid-achieve" `Quick test_restart_from_journal_mid_achieve;
          Alcotest.test_case "restart after commit" `Quick test_restart_from_journal_committed;
        ] );
    ]
