(* Scenario tests for the federated multi-NM subsystem (lib/federation):
   domain adverts export only border modules and an abridged summary (no
   raw topology leaks), a cross-domain goal converges to the exact
   configuration a single NM owning everything would produce, the
   distributed back-out leaves no domain half-configured, conveyMessage
   traffic is relayed NM-to-NM across the domain boundary, and neither NM
   ever writes configuration into the other's domain. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tick_ns = 500_000_000L

(* The structural part of a show_actual report: per-module state keys,
   minus transient pending[..] negotiation state. *)
let structural_keys nm dev =
  match Nm.show_actual nm dev with
  | None -> Alcotest.failf "no showActual answer from %s" dev
  | Some state ->
      List.concat_map
        (fun ((m : Ids.t), kvs) ->
          List.filter_map
            (fun (k, _) ->
              if String.length k >= 8 && String.sub k 0 8 = "pending[" then None
              else Some (Ids.qualified m ^ "/" ^ k))
            kvs)
        state
      |> List.sort_uniq compare

let owner_nm (t : Federation.Fed_scenarios.two_domain) dev =
  if List.mem dev t.Federation.Fed_scenarios.fwest_devices then
    Federation.Fed.nm t.Federation.Fed_scenarios.fwest
  else Federation.Fed.nm t.Federation.Fed_scenarios.feast

(* --- trust boundary: what a domain advertises -------------------------------- *)

let test_advert_exports_only_borders () =
  let t = Federation.Fed_scenarios.build_two_domain 4 in
  let open Federation.Fed_scenarios in
  (match Federation.Fed.advert t.fwest with
  | Wire.Fed_advert { domain; borders; summary; devices; _ } ->
      check Alcotest.string "west advertises its domain name" "west" domain;
      check (Alcotest.list Alcotest.string) "west advertises exactly its own devices"
        t.fwest_devices devices;
      (* border modules live only on devices with links leaving the owned
         set: id-R2 (towards the east domain) and id-R1 (towards the
         customer attachment) — never on interior devices *)
      check tbool "the inter-domain border router is advertised" true
        (List.exists (fun (m : Ids.t) -> m.Ids.dev = "id-R2") borders);
      List.iter
        (fun (m : Ids.t) ->
          check tbool "border modules live on border routers only" true
            (m.Ids.dev = "id-R1" || m.Ids.dev = "id-R2"))
        borders;
      (* the summary is per-address-domain counts — an abridged view *)
      check tbool "summary counts the ISP address domain" true
        (List.mem_assoc "ISP" summary)
  | _ -> Alcotest.fail "advert is not a Fed_advert");
  (* the advert never made the peer's NM learn internal modules: the east
     NM's topology holds no module abstractions for west-internal devices *)
  let east_topo = Nm.topology (Federation.Fed.nm t.feast) in
  List.iter
    (fun dev ->
      match Topology.device east_topo dev with
      | None -> ()
      | Some di ->
          check tint (Printf.sprintf "no module abstractions for %s leaked east" dev) 0
            (List.length di.Topology.di_modules))
    t.fwest_devices

(* --- fault-free cross-domain achieve + single-NM parity ----------------------- *)

let test_cross_domain_achieve_parity () =
  let t = Federation.Fed_scenarios.build_two_domain 4 in
  let open Federation.Fed_scenarios in
  let gid = Federation.Fed.submit t.fwest t.fgoal in
  check tbool "cross-domain goal converges" true (converge t gid);
  check tbool "customer edges reachable" true (two_domain_reachable t);
  check tint "west never wrote into east" 0 (Nm.foreign_writes (Federation.Fed.nm t.fwest));
  check tint "east never wrote into west" 0 (Nm.foreign_writes (Federation.Fed.nm t.feast));
  (* equivalent single-NM run over the same testbed *)
  let c = Scenarios.build_chain 4 in
  (match Nm.achieve c.Scenarios.cnm c.Scenarios.cgoal with
  | Error e -> Alcotest.failf "single-NM achieve failed: %s" e
  | Ok _ -> ());
  Nm.run c.Scenarios.cnm;
  List.iter
    (fun dev ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "configuration of %s matches the single-NM run" dev)
        (structural_keys c.Scenarios.cnm dev)
        (structural_keys (owner_nm t dev) dev))
    t.fscope

(* --- cross-domain conveyMessage relay ----------------------------------------- *)

let test_convey_relayed_across_domains () =
  let t = Federation.Fed_scenarios.build_two_domain 4 in
  let open Federation.Fed_scenarios in
  let gid = Federation.Fed.submit t.fwest t.fgoal in
  check tbool "goal converges" true (converge t gid);
  (* the chosen chain path tunnels edge-to-edge: the GRE/MPLS peer
     negotiation between id-R1 (west) and id-R4 (east) must have crossed
     the boundary as NM-to-NM Fed_relay traffic *)
  check tbool "west relayed conveys out" true (Federation.Fed.relays t.fwest > 0);
  check tbool "east relayed conveys in" true (Federation.Fed.relays t.feast > 0);
  let crossed =
    List.exists
      (fun ((src : Ids.t), (dst : Ids.t), _) ->
        List.mem src.Ids.dev t.fwest_devices && List.mem dst.Ids.dev t.feast_devices)
      (Nm.conveys (Federation.Fed.nm t.fwest))
  in
  check tbool "a west->east convey went through the west NM" true crossed

(* --- distributed back-out: no domain left half-configured --------------------- *)

let test_backout_on_peer_crash () =
  let t = Federation.Fed_scenarios.build_two_domain 4 in
  let open Federation.Fed_scenarios in
  let net = Nm.net (Federation.Fed.nm t.fwest) in
  let eq = Netsim.Net.eq net in
  let run_interval () =
    ignore (Netsim.Net.run_until net ~deadline:(Int64.add (Netsim.Event_queue.now eq) tick_ns))
  in
  (* pristine structural baseline, per device *)
  let baseline = List.map (fun dev -> (dev, structural_keys (owner_nm t dev) dev)) t.fscope in
  let gid = Federation.Fed.submit t.fwest t.fgoal in
  (* drive only the west node: the east NM's handlers still execute its
     delegated slices (message-driven), but its tick never runs, so no
     commit ack is ever sent — then crash the east station entirely *)
  for tick = 0 to 2 do
    Federation.Fed.tick t.fwest ~tick;
    run_interval ()
  done;
  check tbool "west is still waiting for the east ack" false
    (Federation.Fed.achieved t.fwest gid);
  Mgmt.Faults.crash t.ffaults east_station;
  (* commit_timeout ticks later the west coordinator gives up and drives
     the distributed back-out; the east station is down so the abort can
     only be acknowledged after it returns *)
  for tick = 3 to 20 do
    Federation.Fed.tick t.fwest ~tick;
    run_interval ()
  done;
  check tbool "west drove a back-out" true (Federation.Fed.backouts t.fwest >= 1);
  (* west backed its own slices out: its devices are at the baseline *)
  List.iter
    (fun dev ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "%s backed out to baseline" dev)
        (List.assoc dev baseline)
        (structural_keys (owner_nm t dev) dev))
    t.fwest_devices;
  (* east returns: the re-sent abort dismantles its half, then the
     coordinator replans and the goal converges for real *)
  Mgmt.Faults.restart t.ffaults east_station;
  let converged =
    let rec go tick =
      if Federation.Fed.achieved t.fwest gid then true
      else if tick > 80 then false
      else begin
        Federation.Fed.tick t.fwest ~tick;
        Federation.Fed.tick t.feast ~tick;
        run_interval ();
        go (tick + 1)
      end
    in
    go 21
  in
  check tbool "goal converges after the east NM returns" true converged;
  check tbool "east executed at least one abort" true
    (Federation.Fed.delegated_aborted t.feast >= 1);
  check tbool "customer edges reachable" true (two_domain_reachable t);
  check tint "west never wrote into east" 0 (Nm.foreign_writes (Federation.Fed.nm t.fwest));
  check tint "east never wrote into west" 0 (Nm.foreign_writes (Federation.Fed.nm t.feast));
  (* final state parity: the aborted round left no residue anywhere *)
  let c = Scenarios.build_chain 4 in
  (match Nm.achieve c.Scenarios.cnm c.Scenarios.cgoal with
  | Error e -> Alcotest.failf "single-NM achieve failed: %s" e
  | Ok _ -> ());
  Nm.run c.Scenarios.cnm;
  List.iter
    (fun dev ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "%s carries no residue from the aborted round" dev)
        (structural_keys c.Scenarios.cnm dev)
        (structural_keys (owner_nm t dev) dev))
    t.fscope

(* --- the write boundary is enforced, not just observed ------------------------ *)

let test_foreign_slice_refused () =
  let t = Federation.Fed_scenarios.build_two_domain 4 in
  let open Federation.Fed_scenarios in
  (* hand-deliver a commit whose slice names a west device to the east
     node: it must refuse with Fed_commit_err and never configure *)
  let nm_w = Federation.Fed.nm t.fwest in
  let before = structural_keys nm_w "id-R1" in
  let rogue =
    Wire.Fed_commit
      {
        domain = "west";
        gid = 999;
        slices =
          [
            ( "id-R1",
              [ Primitive.Delete_pipe { owner = Ids.v "GRE" "l" "id-R1"; pipe_id = "PX" } ] );
          ];
        reporter = None;
      }
  in
  Nm.send_msg nm_w ~dst:east_station rogue;
  Nm.run nm_w;
  Federation.Fed.tick t.feast ~tick:1;
  Nm.run nm_w;
  check tint "east received the commit" 1 (Federation.Fed.commits_received t.feast);
  check tbool "east tombstoned the rogue commit" true
    (Federation.Fed.delegated_aborted t.feast >= 1);
  check tint "east wrote nothing across the boundary" 0
    (Nm.foreign_writes (Federation.Fed.nm t.feast));
  check (Alcotest.list Alcotest.string) "the west device is untouched" before
    (structural_keys nm_w "id-R1")

let () =
  Alcotest.run "federation"
    [
      ( "federation",
        [
          Alcotest.test_case "advert exports only borders and summary" `Quick
            test_advert_exports_only_borders;
          Alcotest.test_case "cross-domain achieve matches single-NM configuration" `Quick
            test_cross_domain_achieve_parity;
          Alcotest.test_case "conveyMessage is relayed across the boundary" `Quick
            test_convey_relayed_across_domains;
          Alcotest.test_case "back-out leaves no domain half-configured" `Quick
            test_backout_on_peer_crash;
          Alcotest.test_case "a slice naming a foreign device is refused" `Quick
            test_foreign_slice_refused;
        ] );
    ]
