(* Tests for the observability layer (lib/obs + Observe wiring): registry
   key normalization and snapshot/delta/histogram semantics, bounded span
   collectors, and the end-to-end causal-trace invariants — a single-NM
   achieve yields one connected span tree; transport retries and agent
   dedup never duplicate execution spans; a cross-domain federated goal
   stitches into one tree spanning both NMs; and an HA failover replay
   links the post-promotion work under the spans the dead primary opened. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let tick_ns = 500_000_000L

let has_prefix pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- registry ------------------------------------------------------------------ *)

let test_registry_semantics () =
  let r = Obs.Registry.create () in
  Obs.Registry.register r "NM" (fun () -> [ ("Sent", 3); ("weird-name!", 1) ]);
  Obs.Registry.register r "agent" (fun () -> [ ("execs", 2) ]);
  (* names normalize to lowercase [a-z0-9_.]; subsystems are unique *)
  check tbool "duplicate subsystem rejected" true
    (try
       Obs.Registry.register r "nm" (fun () -> []);
       false
     with Invalid_argument _ -> true);
  check
    Alcotest.(list (pair string int))
    "snapshot renders sorted subsystem.name keys"
    [ ("agent.execs", 2); ("nm.sent", 3); ("nm.weird_name_", 1) ]
    (Obs.Registry.snapshot r);
  (* delta counts from zero for new keys and clamps resets to zero *)
  let d =
    Obs.Registry.delta ~base:[ ("nm.sent", 1); ("agent.execs", 5) ] (Obs.Registry.snapshot r)
  in
  check tint "delta counts movement" 2 (List.assoc "nm.sent" d);
  check tint "delta clamps a reset source to zero" 0 (List.assoc "agent.execs" d);
  (* histograms: dots survive normalization, stats come out sorted *)
  List.iter (Obs.Registry.observe r "fed.plan_ticks") [ 3; 1; 2; 2 ];
  (match Obs.Registry.histogram r "fed.plan_ticks" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      check tint "count" 4 s.Obs.Registry.count;
      check tint "min" 1 s.Obs.Registry.min;
      check tint "max" 3 s.Obs.Registry.max;
      check tint "p50" 2 s.Obs.Registry.p50);
  check Alcotest.(list int) "raw samples kept in observation order" [ 3; 1; 2; 2 ]
    (Obs.Registry.samples r "fed.plan_ticks");
  check
    Alcotest.(list string)
    "histogram key kept its dot" [ "fed.plan_ticks" ]
    (List.map fst (Obs.Registry.histograms r));
  (* the JSON dump mentions both sections *)
  let json = Obs.Registry.to_json r in
  check tbool "json has counters" true (String.length json > 0 && String.index_opt json '{' = Some 0);
  List.iter
    (fun needle ->
      check tbool (needle ^ " present") true (contains needle json))
    [ "\"counters\""; "\"histograms\""; "\"fed.plan_ticks\""; "\"nm.sent\": 3" ]

(* --- bounded span collector ----------------------------------------------------- *)

let test_trace_bounded_collector () =
  Obs.Trace.reset_ids ();
  let col = Obs.Trace.create ~limit:4 ~station:"test" () in
  let clock = ref 0 in
  Obs.Trace.set_clock col (fun () -> !clock);
  let root = Obs.Trace.start col "root" in
  check tint "a root span's goal is its own id" root.Obs.Trace.span root.Obs.Trace.goal;
  check tint "a root span has no parent" 0 root.Obs.Trace.parent;
  clock := 2;
  let kid = Obs.Trace.start ~parent:root col "child" in
  check tint "a child joins its parent's goal" root.Obs.Trace.goal kid.Obs.Trace.goal;
  Obs.Trace.event col kid "retry 1";
  Obs.Trace.finish col kid ~status:"ok";
  Obs.Trace.finish col kid ~status:"failed: again";
  (match Obs.Trace.find col kid.Obs.Trace.span with
  | None -> Alcotest.fail "child span evicted too early"
  | Some s ->
      check tstr "finish is idempotent (first status wins)" "ok" s.Obs.Trace.s_status;
      check tint "span start is tick-stamped" 2 s.Obs.Trace.s_start;
      check
        Alcotest.(list (pair int string))
        "events tick-stamped in order"
        [ (2, "retry 1") ]
        s.Obs.Trace.s_events);
  (* push past the limit: oldest spans are dropped and counted *)
  for i = 0 to 5 do
    ignore (Obs.Trace.start col (Printf.sprintf "filler%d" i))
  done;
  check tbool "collector stays bounded" true (List.length (Obs.Trace.spans col) <= 4);
  check tint "evictions are counted, not silent" 4 (Obs.Trace.dropped col);
  check tbool "the root was evicted" true (Obs.Trace.find col root.Obs.Trace.span = None)

(* --- single-NM achieve: one connected tree -------------------------------------- *)

let test_single_nm_achieve_tree () =
  Nm.set_incarnations 0;
  Obs.Trace.reset_ids ();
  let d = Scenarios.build_diamond () in
  let obs = Observe.create () in
  let col =
    Observe.attach_nm obs ~agents:d.Scenarios.dagents ~transport:d.Scenarios.dtransport
      ~admission:d.Scenarios.dadmission ~faults:d.Scenarios.dfaults
      ~station:Scenarios.nm_station_id d.Scenarios.dnm
  in
  (match Nm.achieve d.Scenarios.dnm d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve: %s" e);
  let goals = Obs.Trace.goals [ col ] in
  check tint "one goal traced" 1 (List.length goals);
  let g = List.hd goals in
  check tbool "tree is connected (one root, zero orphans)" true (Obs.Trace.connected [ col ] g);
  check tint "zero orphan spans" 0 (List.length (Obs.Trace.orphans [ col ] g));
  let spans = Obs.Trace.goal_spans [ col ] g in
  let named pre = List.filter (fun s -> has_prefix pre s.Obs.Trace.s_name) spans in
  check tbool "bundles were traced" true (List.length (named "bundle:") > 0);
  check tbool "agent executions were traced" true (List.length (named "exec:") > 0);
  (* every exec span was opened by an agent yet parents into the NM's tree *)
  List.iter
    (fun (s : Obs.Trace.span) ->
      check tbool (s.Obs.Trace.s_name ^ " linked under a bundle") true
        (List.exists (fun (p : Obs.Trace.span) -> p.Obs.Trace.s_id = s.Obs.Trace.s_parent)
           (named "bundle:")))
    (named "exec:")

(* --- transport retries + agent dedup never duplicate spans ----------------------- *)

let test_retries_dedup_no_duplicate_spans () =
  Nm.set_incarnations 0;
  Obs.Trace.reset_ids ();
  let d = Scenarios.build_diamond ~fault_seed:3 () in
  let obs = Observe.create () in
  let col =
    Observe.attach_nm obs ~agents:d.Scenarios.dagents ~transport:d.Scenarios.dtransport
      ~admission:d.Scenarios.dadmission ~faults:d.Scenarios.dfaults
      ~station:Scenarios.nm_station_id d.Scenarios.dnm
  in
  (* a lossy, duplicating channel: Reliable retransmits, receivers dedup *)
  Mgmt.Faults.set_drop d.Scenarios.dfaults 0.25;
  Mgmt.Faults.set_duplicate d.Scenarios.dfaults 0.25;
  (match Nm.achieve d.Scenarios.dnm d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve under loss: %s" e);
  let c = Mgmt.Reliable.counters d.Scenarios.dtransport in
  check tbool "the channel actually retransmitted" true (c.Mgmt.Reliable.retransmits > 0);
  check tbool "duplicates actually arrived" true (c.Mgmt.Reliable.duplicates > 0);
  let g = List.hd (Obs.Trace.goals [ col ]) in
  check tbool "tree still connected under loss" true (Obs.Trace.connected [ col ] g);
  check tint "zero orphans under loss" 0 (List.length (Obs.Trace.orphans [ col ] g));
  (* the invariant: retransmission and duplicate delivery never mint a
     second exec span for the same device — dedup suppresses the frame
     before the agent's script runner sees it *)
  let execs =
    List.filter
      (fun s -> has_prefix "exec:" s.Obs.Trace.s_name)
      (Obs.Trace.goal_spans [ col ] g)
  in
  check tbool "scripts were traced" true (execs <> []);
  check tint "one exec span per device, despite retries and duplicates"
    (List.length (List.sort_uniq compare (List.map (fun s -> s.Obs.Trace.s_name) execs)))
    (List.length execs)

(* --- federated goal: one tree across two NMs ------------------------------------ *)

let test_fed_connected_tree () =
  Nm.set_incarnations 0;
  Obs.Trace.reset_ids ();
  let t = Federation.Fed_scenarios.build_two_domain 4 in
  let open Federation.Fed_scenarios in
  let obs = instrument t in
  let gid = Federation.Fed.submit t.fwest t.fgoal in
  check tbool "cross-domain goal converges" true (converge ~obs t gid);
  let cols = Observe.collectors obs in
  let g =
    match Federation.Fed.goal_trace t.fwest gid with
    | Some ctx -> ctx.Obs.Trace.goal
    | None -> Alcotest.fail "no trace root for the federated goal"
  in
  check tbool "one connected tree across both NMs" true (Obs.Trace.connected cols g);
  check tint "zero orphan spans" 0 (List.length (Obs.Trace.orphans cols g));
  let spans = Obs.Trace.goal_spans cols g in
  let stations = List.sort_uniq compare (List.map (fun s -> s.Obs.Trace.s_station) spans) in
  check tbool "spans live on both stations" true (List.length stations >= 2);
  List.iter
    (fun name ->
      check tbool (name ^ " span present") true
        (List.exists (fun s -> s.Obs.Trace.s_name = name) spans))
    [ "fed-goal"; "plan"; "plan-expand"; "commit"; "delegated:east" ];
  (* the root closed cleanly once the goal was achieved *)
  (match List.find_opt (fun s -> s.Obs.Trace.s_parent = 0) spans with
  | None -> Alcotest.fail "no root span"
  | Some root ->
      check tstr "root status" "ok" root.Obs.Trace.s_status;
      check tbool "root closed" true (root.Obs.Trace.s_end >= 0));
  (* rendering mentions work on both stations *)
  let rendered = Obs.Trace.render cols g in
  List.iter
    (fun needle ->
      check tbool (needle ^ " rendered") true (contains needle rendered))
    [ "fed-goal"; "@ id-NM-W"; "@ id-NM-E" ]

(* --- HA failover: replayed work links under the dead primary's spans ------------- *)

let test_ha_replay_links_spans () =
  Nm.set_incarnations 0;
  Obs.Trace.reset_ids ();
  let d = Scenarios.build_diamond () in
  let net = d.Scenarios.dtb.Netsim.Testbeds.dia_net in
  let standby =
    Nm.create ~transport:d.Scenarios.dtransport ~chan:d.Scenarios.dchan ~net
      ~my_id:Scenarios.standby_station_id ()
  in
  let p, s = Ha.pair ~primary:d.Scenarios.dnm ~standby () in
  let obs = Observe.create () in
  let col =
    Observe.attach_nm obs ~agents:d.Scenarios.dagents ~transport:d.Scenarios.dtransport
      ~admission:d.Scenarios.dadmission ~faults:d.Scenarios.dfaults
      ~station:Scenarios.nm_station_id d.Scenarios.dnm
  in
  let scol = Observe.attach_nm obs ~prefix:"standby" ~station:Scenarios.standby_station_id standby in
  let cols = [ col; scol ] in
  let step tick =
    Observe.set_tick obs tick;
    ignore
      (Netsim.Net.run_until net
         ~deadline:(Int64.add (Netsim.Event_queue.now (Netsim.Net.eq net)) tick_ns));
    Ha.tick p ~tick;
    Ha.tick s ~tick
  in
  for t = 0 to 1 do
    step t
  done;
  (* id-C drops off the channel mid-achieve; a short horizon makes achieve
     return optimistically before the transport gives the device up, so
     its Traced bundle is stranded in flight when the primary dies *)
  Mgmt.Faults.partition d.Scenarios.dfaults "id-C";
  Nm.set_horizon (Ha.nm p)
    (Some (Int64.add (Netsim.Event_queue.now (Netsim.Net.eq net)) 10_000_000L));
  (match Nm.achieve (Ha.nm p) d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve within the horizon: %s" e);
  check tbool "request left in flight at the primary" true (Nm.inflight_count (Ha.nm p) > 0);
  check tbool "a stranded request carries its trace context" true
    (List.exists (fun (_, _, msg) -> Wire.trace_of msg <> None) (Nm.inflight (Ha.nm p)));
  ignore (Netsim.Net.run net);
  Mgmt.Faults.crash d.Scenarios.dfaults Scenarios.nm_station_id;
  Ha.set_alive p false;
  let promoted = ref None in
  (try
     for t = 2 to 14 do
       step t;
       if !promoted = None && Ha.role s = Ha.Primary then begin
         promoted := Some t;
         raise Exit
       end
     done
   with Exit -> ());
  let t0 = match !promoted with Some t -> t | None -> Alcotest.fail "standby never promoted" in
  check tbool "promotion replayed the unconfirmed requests" true (Ha.replayed s > 0);
  check tbool "promotion bumped the epoch" true (Ha.epoch s > 0);
  Mgmt.Faults.heal d.Scenarios.dfaults "id-C";
  for t = t0 + 1 to t0 + 4 do
    step t
  done;
  Nm.flush_inflight (Ha.nm s);
  check tint "every replayed request confirmed" 0 (Nm.inflight_count (Ha.nm s));
  (* the trace invariant: the replay preserved the original contexts, so
     the work finished under the NEW epoch still hangs off the spans the
     dead primary opened — one goal, zero orphans across both collectors *)
  List.iter
    (fun g ->
      check tint
        (Printf.sprintf "goal %d has zero orphans across failover" g)
        0
        (List.length (Obs.Trace.orphans cols g)))
    (Obs.Trace.goals cols);
  let g = List.hd (Obs.Trace.goals cols) in
  let spans = Obs.Trace.goal_spans cols g in
  (* the takeover opened a replay span ON THE NEW STATION, parented on the
     context the dead primary stamped into the stranded frame *)
  let replays = List.filter (fun s -> has_prefix "replay:id-C" s.Obs.Trace.s_name) spans in
  check tbool "the replayed request got a replay span" true (replays <> []);
  List.iter
    (fun (r : Obs.Trace.span) ->
      check tstr "replay span lives on the new leader's station" Scenarios.standby_station_id
        r.Obs.Trace.s_station;
      check tbool "replay span linked under the dead primary's work" true
        (List.exists
           (fun (pspan : Obs.Trace.span) ->
             pspan.Obs.Trace.s_id = r.Obs.Trace.s_parent && pspan.Obs.Trace.s_start < t0)
           spans))
    replays;
  (* ... and id-C's eventual execution hangs off that replay span *)
  let late_execs =
    List.filter
      (fun s -> has_prefix "exec:id-C" s.Obs.Trace.s_name && s.Obs.Trace.s_start >= t0)
      spans
  in
  check tbool "id-C's script ran only after the failover" true (late_execs <> []);
  List.iter
    (fun (s : Obs.Trace.span) ->
      check tbool "post-failover exec linked under the replay span" true
        (List.exists
           (fun (r : Obs.Trace.span) -> r.Obs.Trace.s_id = s.Obs.Trace.s_parent)
           replays))
    late_execs

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [ Alcotest.test_case "normalize, snapshot, delta, histograms" `Quick test_registry_semantics ] );
      ( "trace",
        [
          Alcotest.test_case "bounded collector, tick stamps, idempotent finish" `Quick
            test_trace_bounded_collector;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "single-NM achieve yields one connected tree" `Quick
            test_single_nm_achieve_tree;
          Alcotest.test_case "retries and dedup never duplicate spans" `Quick
            test_retries_dedup_no_duplicate_spans;
          Alcotest.test_case "federated goal stitches one tree across NMs" `Quick
            test_fed_connected_tree;
          Alcotest.test_case "failover replay links spans under the new epoch" `Quick
            test_ha_replay_links_spans;
        ] );
    ]
