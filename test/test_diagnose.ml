(* Tests for the fault-diagnosis & telemetry subsystem: Counters delta
   semantics, the bounded Trace ring, the showPerf scrape (including over a
   lossy management channel), the counter-based root-cause localizer, and
   the Monitor picking its first repair rung from the diagnosis. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- Counters delta semantics -------------------------------------------------- *)

let test_counters_delta () =
  let c = Netsim.Counters.create () in
  Netsim.Counters.incr c "rx";
  Netsim.Counters.incr ~by:4 c "tx";
  let before = Netsim.Counters.snapshot c in
  Netsim.Counters.incr ~by:2 c "rx";
  Netsim.Counters.incr c "drop:mtu";
  let after = Netsim.Counters.snapshot c in
  let d = Netsim.Counters.delta ~before ~after in
  check tint "changed counter reports its difference" 2 (List.assoc "rx" d);
  check tint "flat counter reports zero" 0 (List.assoc "tx" d);
  check tint "counter absent from the baseline counts from zero" 1 (List.assoc "drop:mtu" d);
  Netsim.Counters.reset c;
  Netsim.Counters.incr c "rx";
  let d2 = Netsim.Counters.delta ~before:after ~after:(Netsim.Counters.snapshot c) in
  check tint "a reset counter clamps to zero, not negative" 0 (List.assoc "rx" d2)

(* --- bounded trace ring --------------------------------------------------------- *)

let test_trace_cap () =
  let saved = Netsim.Trace.get_limit () in
  Fun.protect
    ~finally:(fun () ->
      Netsim.Trace.set_limit saved;
      Netsim.Trace.clear ())
    (fun () ->
      Netsim.Trace.clear ();
      Netsim.Trace.set_limit 10;
      Netsim.Trace.enabled := true;
      for i = 1 to 25 do
        Netsim.Trace.emit ~device:"dev" ~what:(string_of_int i) Bytes.empty
      done;
      Netsim.Trace.enabled := false;
      let events = Netsim.Trace.get () in
      check tint "buffer capped at the limit" 10 (List.length events);
      check tint "oldest events were the ones dropped" 15 (Netsim.Trace.dropped ());
      (match events with
      | first :: _ ->
          check tbool "survivors are the newest events" true (first.Netsim.Trace.what = "16")
      | [] -> Alcotest.fail "empty trace");
      Netsim.Trace.clear ();
      check tint "clear resets the dropped count" 0 (Netsim.Trace.dropped ()))

(* --- the showPerf scrape -------------------------------------------------------- *)

let configured_vpn ?(pick = Scenarios.pure_gre) () =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let path = List.find pick paths in
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal path in
  (v, path)

let pump v =
  for _ = 1 to 4 do
    ignore (Scenarios.vpn_reachable v)
  done

let test_show_perf_truthful () =
  let v, _ = configured_vpn () in
  pump v;
  match Nm.show_perf v.Scenarios.nm "id-A" with
  | None -> Alcotest.fail "no showPerf answer from id-A"
  | Some reports ->
      (* every advertised perf_reporting counter of the ETH module shows up
         on its pipes, and traffic actually moved them *)
      let eth =
        match List.find_opt (fun ((m : Ids.t), _) -> m.Ids.name = "ETH") reports with
        | Some (_, pipes) -> pipes
        | None -> Alcotest.fail "ETH module missing from the perf report"
      in
      check tbool "ETH reports at least one pipe" true (eth <> []);
      List.iter
        (fun (_, counters) ->
          List.iter
            (fun name ->
              check tbool (name ^ " present on every ETH pipe") true
                (List.mem_assoc name counters))
            [ "up_frames"; "up_bytes"; "down_frames"; "down_bytes" ])
        eth;
      let moved =
        List.exists
          (fun (_, counters) ->
            List.assoc "down_frames" counters > 0 && List.assoc "down_bytes" counters > 0)
          eth
      in
      check tbool "data-plane traffic moved the ETH counters" true moved

let test_scrape_over_lossy_channel () =
  let v, _ = configured_vpn () in
  pump v;
  Mgmt.Faults.set_drop v.Scenarios.faults 0.3;
  (* reliable delivery (acks + retries) must still get the scrape through *)
  for _ = 1 to 3 do
    match Nm.show_perf v.Scenarios.nm "id-B" with
    | None -> Alcotest.fail "showPerf lost despite reliable delivery"
    | Some reports -> check tbool "transit device reports modules" true (reports <> [])
  done

(* --- root-cause localization ---------------------------------------------------- *)

(* Two healthy rounds (baseline + known-good delta), inject, then scrape
   until the localizer speaks — mirroring the NM poller's view. *)
let localize ?(rounds = 4) ~pick ~inject () =
  let v, path = configured_vpn ~pick () in
  let tel = Telemetry.create ~scope:v.Scenarios.scope v.Scenarios.nm in
  for _ = 1 to 2 do
    pump v;
    Telemetry.scrape tel
  done;
  inject v;
  let rec go n =
    pump v;
    Telemetry.scrape tel;
    match Telemetry.diagnose_path tel path with
    | d :: _ as ds -> (v, ds, d)
    | [] -> if n > 1 then go (n - 1) else Alcotest.fail "localizer stayed silent"
  in
  go rounds

let vpn_seg (v : Scenarios.vpn) =
  Netsim.Net.find_segment_exn v.Scenarios.tb.Netsim.Testbeds.vpn_net "A--B"

let test_localize_cut_link () =
  let _, _, top =
    localize ~pick:Scenarios.pure_gre ~inject:(fun v -> Netsim.Link.cut (vpn_seg v)) ()
  in
  (match top.Diagnose.verdict with
  | Diagnose.Cut_link seg -> check Alcotest.string "cut segment named" "id-A--id-B" seg
  | other -> Alcotest.failf "expected a cut link, got %a" Diagnose.pp_verdict other);
  check tbool "high confidence" true (top.Diagnose.confidence >= 0.9)

let test_localize_misconfigured_mpls () =
  let _, _, top =
    localize ~pick:Scenarios.pure_mpls
      ~inject:(fun v ->
        Hashtbl.iter
          (fun _ (ilm : Netsim.Device.ilm) -> ilm.Netsim.Device.ilm_xc <- None)
          v.Scenarios.tb.Netsim.Testbeds.rb.Netsim.Device.mpls.Netsim.Device.ilm_table)
      ()
  in
  match top.Diagnose.verdict with
  | Diagnose.Misconfigured_module { dev; module_id } ->
      check Alcotest.string "blamed device" "id-B" dev;
      check tbool "blamed the MPLS module, not ETH" true (contains_sub module_id ".p");
      check tbool "evidence names the drop cause" true
        (List.exists (fun e -> contains_sub e "drop:no_xc") top.Diagnose.evidence)
  | other -> Alcotest.failf "expected a misconfigured module, got %a" Diagnose.pp_verdict other

let test_localize_lossy_segment () =
  let _, _, top =
    localize ~pick:Scenarios.pure_gre
      ~inject:(fun v ->
        Netsim.Link.set_seed (vpn_seg v) 7L;
        Netsim.Link.set_loss (vpn_seg v) 0.5)
      ()
  in
  match top.Diagnose.verdict with
  | Diagnose.Lossy_segment seg -> check Alcotest.string "lossy segment named" "id-A--id-B" seg
  | other -> Alcotest.failf "expected a lossy segment, got %a" Diagnose.pp_verdict other

let test_localize_unreachable_agent () =
  let _, _, top =
    localize ~pick:Scenarios.pure_gre
      ~inject:(fun v -> Mgmt.Faults.partition v.Scenarios.faults "id-B")
      ()
  in
  match top.Diagnose.verdict with
  | Diagnose.Unreachable_agent dev -> check Alcotest.string "silent device named" "id-B" dev
  | other -> Alcotest.failf "expected an unreachable agent, got %a" Diagnose.pp_verdict other

(* --- the Monitor consults the diagnosis ----------------------------------------- *)

let test_monitor_reroutes_on_diagnosed_cut () =
  let d = Scenarios.build_diamond () in
  let nm = d.Scenarios.dnm in
  let chosen =
    match Nm.achieve nm d.Scenarios.dgoal with
    | Ok (_, path, _) ->
        List.find_map
          (fun (v : Path_finder.visit) ->
            let dev = v.Path_finder.v_mod.Ids.dev in
            if dev = "id-B1" || dev = "id-B2" then Some dev else None)
          path.Path_finder.visits
        |> Option.get
    | Error e -> Alcotest.failf "achieve: %s" e
  in
  let seg_name = if chosen = "id-B1" then "A--B1" else "A--B2" in
  let seg = Netsim.Net.find_segment_exn d.Scenarios.dtb.Netsim.Testbeds.dia_net seg_name in
  Netsim.Link.flap ~cycles:1 seg ~first_down_ns:1_000_000_000L ~down_ns:3_000_000_000L
    ~up_ns:1_000_000_000L;
  let tel = Telemetry.create ~scope:d.Scenarios.dscope nm in
  let mon = Monitor.create ~telemetry:tel nm in
  Monitor.run mon ~ticks:10;
  let diagnosed =
    List.find_opt
      (fun (e : Monitor.event) -> contains_sub e.Monitor.ev_what "diagnosed")
      (Monitor.events mon)
  in
  (match diagnosed with
  | Some e ->
      check tbool "first diagnosis is the cut" true (contains_sub e.Monitor.ev_what "cut link");
      check tbool "and it picks reroute as the first rung" true
        (contains_sub e.Monitor.ev_what "rerouting")
  | None -> Alcotest.fail "monitor never logged a diagnosis");
  check tint "no resync wasted on a cut path" 0 (Monitor.resyncs mon);
  check tbool "repaired over the other core" true (Monitor.repairs mon >= 1);
  check tbool "reachable after repair" true (Scenarios.diamond_reachable d)

let test_monitor_resyncs_on_diagnosed_drift () =
  let v = Scenarios.build_vpn () in
  let nm = v.Scenarios.nm in
  let script =
    match Nm.achieve nm v.Scenarios.goal with
    | Ok (_, _, s) -> s
    | Error e -> Alcotest.failf "achieve: %s" e
  in
  let tel = Telemetry.create ~scope:v.Scenarios.scope nm in
  let mon = Monitor.create ~telemetry:tel nm in
  Monitor.run mon ~ticks:2;
  (* an operator wipes a pipe of the transit device behind the NM's back:
     traffic now dies inside id-B, which the localizer reads as a
     misconfigured module — the cheap repair (resync) must come first *)
  let owner, pid =
    match
      List.find_map
        (function
          | Primitive.Create_pipe spec when spec.Primitive.top.Ids.dev = "id-B" ->
              Some (spec.Primitive.top, spec.Primitive.pipe_id)
          | _ -> None)
        script.Script_gen.prims
    with
    | Some x -> x
    | None -> Alcotest.fail "no pipe on the transit device in the script"
  in
  let agent_b = List.assoc "B" v.Scenarios.agents in
  (match Agent.find_module agent_b owner with
  | Some m -> m.Module_impl.delete_pipe pid
  | None -> Alcotest.failf "module %s not found on B" (Ids.qualified owner));
  Monitor.run mon ~ticks:4;
  (match
     List.find_opt
       (fun (e : Monitor.event) -> contains_sub e.Monitor.ev_what "diagnosed")
       (Monitor.events mon)
   with
  | Some e ->
      check tbool "diagnosis blames a module on id-B" true
        (contains_sub e.Monitor.ev_what "misconfigured module"
        && contains_sub e.Monitor.ev_what "id-B");
      check tbool "and picks resync as the first rung, not reroute" true
        (contains_sub e.Monitor.ev_what "resyncing")
  | None -> Alcotest.fail "monitor never logged a diagnosis");
  check tbool "resynced in place" true (Monitor.resyncs mon >= 1);
  check tbool "VPN reachable again" true (Scenarios.vpn_reachable v)

let () =
  Alcotest.run "diagnose"
    [
      ( "counters",
        [
          Alcotest.test_case "delta semantics" `Quick test_counters_delta;
          Alcotest.test_case "trace ring cap" `Quick test_trace_cap;
        ] );
      ( "scrape",
        [
          Alcotest.test_case "showPerf is truthful" `Quick test_show_perf_truthful;
          Alcotest.test_case "survives a lossy channel" `Quick test_scrape_over_lossy_channel;
        ] );
      ( "localizer",
        [
          Alcotest.test_case "cut link" `Quick test_localize_cut_link;
          Alcotest.test_case "misconfigured MPLS xconnect" `Quick
            test_localize_misconfigured_mpls;
          Alcotest.test_case "lossy segment" `Quick test_localize_lossy_segment;
          Alcotest.test_case "unreachable agent" `Quick test_localize_unreachable_agent;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "reroutes on diagnosed cut" `Quick
            test_monitor_reroutes_on_diagnosed_cut;
          Alcotest.test_case "resyncs on diagnosed drift" `Quick
            test_monitor_resyncs_on_diagnosed_drift;
        ] );
    ]
