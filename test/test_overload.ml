(* Overload-protection tests: wire-priority classification, the admission
   layer's token bucket / bounded queues / lowest-priority-first shedding,
   Reliable's per-destination pending cap, seeded mutational fuzzing of
   every channel codec (decode must never raise anything undeclared),
   HA failure detection under a telemetry storm, and the telemetry
   poller's shed-feedback backoff. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* --- wire priority classification ---------------------------------------- *)

let test_wire_priorities () =
  let p m = Wire.priority_of m in
  check tint "heartbeat is P0" 0 (p (Wire.Ha_heartbeat { epoch = 1; seq = 7 }));
  check tint "takeover is P0" 0 (p (Wire.Nm_takeover { nm = "id-NM2"; epoch = 2 }));
  check tint "fenced takes the inner class" 0
    (p (Wire.Fenced { epoch = 2; msg = Wire.Ha_heartbeat { epoch = 2; seq = 1 } }));
  check tint "bundle is P1" 1
    (p (Wire.Bundle { req = 1; cmds = []; annex = Wire.empty_annex }));
  check tint "ack is P1" 1 (p (Wire.Ack { req = 1 }));
  check tint "journal ack is P1" 1 (p (Wire.Ha_journal_ack { epoch = 1; upto = 3 }));
  check tint "hello is P2" 2 (p (Wire.Hello { ports = [] }));
  check tint "showActual is P2" 2 (p (Wire.Show_actual_req { req = 4 }));
  check tint "fenced probe is P2" 2
    (p (Wire.Fenced { epoch = 1; msg = Wire.Show_actual_req { req = 5 } }));
  check tint "showPerf req is P3" 3 (p (Wire.Show_perf_req { req = 6 }));
  check tint "showPerf resp is P3" 3 (p (Wire.Show_perf_resp { req = 6; perf = [] }))

(* --- admission unit tests ------------------------------------------------- *)

(* A recording inner channel: sends land synchronously in [sent]. *)
let recording () =
  let sent = ref [] in
  let stats =
    { Mgmt.Channel.frames_sent = 0; frames_delivered = 0; frames_dropped = 0; seen_high_water = 0 }
  in
  let chan =
    Mgmt.Channel.make
      ~send:(fun ~src:_ ~dst payload -> sent := (dst, payload) :: !sent)
      ~subscribe:(fun _ _ -> ())
      ~stats
  in
  (chan, sent)

let hb seq = Wire.encode (Wire.Ha_heartbeat { epoch = 1; seq })
let bundle req = Wire.encode (Wire.Bundle { req; cmds = []; annex = Wire.empty_annex })
let probe req = Wire.encode (Wire.Show_actual_req { req })
let perf req = Wire.encode (Wire.Show_perf_req { req })

let classify payload =
  Mgmt.Admission.priority_of_int
    (match Wire.decode payload with exception _ -> 2 | m -> Wire.priority_of m)

let wrap_tight ?(bucket = 4) ?(refill = 1000) ?(queue = 8) ?(deadline = 50_000_000L) () =
  let eq = Netsim.Event_queue.create () in
  let inner, sent = recording () in
  let config =
    {
      Mgmt.Admission.bucket_capacity = bucket;
      refill_per_s = refill;
      queue_capacity = queue;
      p3_deadline_ns = deadline;
      drain_period_ns = 1_000_000L;
    }
  in
  let chan, adm = Mgmt.Admission.wrap ~config ~eq ~classify inner in
  (eq, chan, adm, sent)

let run_for eq ns =
  ignore
    (Netsim.Event_queue.run_until eq ~deadline:(Int64.add (Netsim.Event_queue.now eq) ns))

let test_p0_bypasses_exhaustion () =
  let _eq, chan, adm, sent = wrap_tight () in
  (* exhaust the bucket and overflow the queue with telemetry *)
  for i = 1 to 30 do
    Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (perf i)
  done;
  let before = List.length !sent in
  check tint "only the burst budget passed" 4 before;
  Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (hb 1);
  Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (bundle 99);
  check tint "P0 and P1 passed straight through the jam" (before + 2) (List.length !sent);
  let c = Mgmt.Admission.counters adm in
  check tint "no P0 shed" 0 c.(0).Mgmt.Admission.shed;
  check tint "no P1 shed" 0 c.(1).Mgmt.Admission.shed;
  check tbool "telemetry was shed" true (c.(3).Mgmt.Admission.shed > 0)

let test_shed_lowest_priority_first () =
  let _eq, chan, adm, sent = wrap_tight ~bucket:2 ~refill:0 ~queue:4 () in
  (* two tokens, then a full queue of telemetry *)
  for i = 1 to 6 do
    Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (perf i)
  done;
  check tint "burst budget" 2 (List.length !sent);
  check tint "queue full" 4 (Mgmt.Admission.queue_depth adm);
  (* probes arriving at the cap displace queued telemetry, not vice versa *)
  Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (probe 7);
  Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (probe 8);
  let c = Mgmt.Admission.counters adm in
  check tint "P3 shed to make room for P2" 2 c.(3).Mgmt.Admission.shed;
  check tint "no P2 shed" 0 c.(2).Mgmt.Admission.shed;
  check tint "queue still at cap" 4 (Mgmt.Admission.queue_depth adm)

let test_refill_drains_p2_before_p3 () =
  let eq, chan, adm, sent = wrap_tight ~bucket:1 ~refill:1000 ~queue:8 () in
  Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (perf 1);
  (* bucket empty: these queue *)
  Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (perf 2);
  Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (probe 3);
  check tint "one admitted, two queued" 1 (List.length !sent);
  (* 10 virtual ms = 10 refilled tokens: the drainer must serve the probe
     (P2) before the older telemetry frame *)
  run_for eq 10_000_000L;
  check tint "queue drained" 0 (Mgmt.Admission.queue_depth adm);
  let delivered = List.rev_map snd !sent in
  check tint "all three delivered" 3 (List.length delivered);
  check tbool "probe overtook the older telemetry" true
    (List.nth delivered 1 = probe 3 && List.nth delivered 2 = perf 2)

let test_p3_deadline_expiry () =
  let eq, chan, adm, sent = wrap_tight ~bucket:2 ~refill:0 ~queue:8 ~deadline:10_000_000L () in
  for i = 1 to 5 do
    Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (perf i)
  done;
  check tint "three queued" 3 (Mgmt.Admission.queue_depth adm);
  (* no refill ever comes; past the deadline the stale scrapes expire *)
  run_for eq 20_000_000L;
  check tint "expired, not delivered" 2 (List.length !sent);
  check tint "queue empty" 0 (Mgmt.Admission.queue_depth adm);
  let c = Mgmt.Admission.counters adm in
  check tint "expiry counted" 3 c.(3).Mgmt.Admission.expired;
  check tbool "lost_total sees expiry" true (Mgmt.Admission.lost_total adm >= 3)

let test_per_peer_buckets () =
  let _eq, chan, _adm, sent = wrap_tight ~bucket:3 ~refill:0 () in
  for i = 1 to 10 do
    Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-A" (perf i)
  done;
  let after_nm = List.length !sent in
  check tint "first peer exhausted its own budget" 3 after_nm;
  (* a different sending peer has an untouched bucket — but the shared
     backlog is non-empty, so its fresh telemetry must queue behind it
     rather than jump ahead *)
  Mgmt.Channel.send chan ~src:"id-NM2" ~dst:"id-A" (perf 11);
  check tint "second peer queued behind the backlog" after_nm (List.length !sent)

(* --- Reliable: bounded pending buffers ------------------------------------ *)

let test_reliable_pending_cap () =
  let eq = Netsim.Event_queue.create () in
  let oob = Mgmt.Channel.Oob.create eq in
  let config = { Mgmt.Reliable.default_config with Mgmt.Reliable.max_pending_per_dst = 4 } in
  let chan, rel =
    Mgmt.Reliable.create ~config
      ~classify:(fun payload ->
        match Wire.decode payload with exception _ -> 2 | m -> Wire.priority_of m)
      ~eq oob
  in
  Mgmt.Channel.subscribe chan ~device_id:"id-NM" (fun ~src:_ _ -> ());
  (* "id-dead" never subscribes: nothing is ever acked, pending grows *)
  for i = 1 to 10 do
    Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-dead" (perf i)
  done;
  let c = Mgmt.Reliable.counters rel in
  check tint "oldest telemetry abandoned at the cap" 6 c.Mgmt.Reliable.pending_shed;
  check tint "in-flight bounded" 4 (Mgmt.Reliable.in_flight rel);
  check tbool "high water recorded" true (c.Mgmt.Reliable.pending_high_water >= 4);
  (* non-telemetry frames are never shed: the cap only records them *)
  for i = 1 to 10 do
    Mgmt.Channel.send chan ~src:"id-NM" ~dst:"id-dead2" (probe i)
  done;
  let c = Mgmt.Reliable.counters rel in
  check tint "no probe was shed" 6 c.Mgmt.Reliable.pending_shed;
  check tint "probes all still pending" 14 (Mgmt.Reliable.in_flight rel);
  check tbool "cap overshoot recorded" true (c.Mgmt.Reliable.pending_high_water >= 10)

(* --- codec fuzzing --------------------------------------------------------- *)

let wire_corpus =
  [
    Wire.Hello { ports = [ ("eth1", "id-B", "eth2"); ("eth2", "id-C", "eth1") ] };
    Wire.Show_potential_req { req = 1 };
    Wire.Show_actual_req { req = 2 };
    Wire.Show_perf_req { req = 3 };
    Wire.Show_perf_resp
      { req = 3; perf = [ (Ids.v "ETH" "a" "id-A", [ ("pipe0", [ ("rx", 12) ]) ]) ] };
    Wire.Nm_takeover { nm = "id-NM2"; epoch = 3 };
    Wire.Ha_heartbeat { epoch = 2; seq = 17 };
    Wire.Ha_journal_ack { epoch = 2; upto = 40 };
    Wire.Ha_confirm { epoch = 2; req = 41 };
    Wire.Fenced { epoch = 2; msg = Wire.Show_actual_req { req = 9 } };
    Wire.Ack { req = 4 };
    Wire.Bundle_ack { req = 7 };
    Wire.Bundle_err { req = 5; error = "no such module" };
    Wire.Set_address { req = 6; target = Ids.v "IP" "i1" "id-B1"; addr = "10.0.0.1"; plen = 24 };
    Wire.Self_test_req { req = 8; target = Ids.v "IP" "g" "id-A"; against = None };
    Wire.Completion { src = Ids.v "MPLS" "q" "id-C"; what = "lsp-established" };
    Wire.Trigger { src = Ids.v "IP" "g" "id-A"; field = "up"; value = "false" };
    (* trace contexts piggyback on any frame, nested either way around the
       epoch fence — both orderings must survive the mutational fuzz *)
    Wire.Traced
      {
        ctx = { Obs.Trace.goal = 1; span = 5; parent = 4 };
        msg = Wire.Bundle_ack { req = 7 };
      };
    Wire.Fenced
      {
        epoch = 3;
        msg =
          Wire.Traced
            {
              ctx = { Obs.Trace.goal = 2; span = 9; parent = 0 };
              msg = Wire.Ack { req = 11 };
            };
      };
  ]

(* Seeded mutations: truncate, bit-flip, or splice two encodings. *)
let mutate prng pool =
  let pick () = List.nth pool (Mgmt.Faults.Prng.below prng (List.length pool)) in
  let b = Bytes.copy (pick ()) in
  match Mgmt.Faults.Prng.below prng 3 with
  | 0 -> Bytes.sub b 0 (Mgmt.Faults.Prng.below prng (Bytes.length b))
  | 1 ->
      let i = Mgmt.Faults.Prng.below prng (Bytes.length b) in
      let bit = 1 lsl Mgmt.Faults.Prng.below prng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit land 0xff));
      b
  | _ ->
      let o = pick () in
      let cut = Mgmt.Faults.Prng.below prng (Bytes.length b) in
      let cut' = Mgmt.Faults.Prng.below prng (Bytes.length o) in
      Bytes.cat (Bytes.sub b 0 cut) (Bytes.sub o cut' (Bytes.length o - cut'))

let test_fuzz_wire_decode () =
  let prng = Mgmt.Faults.Prng.create 1234 in
  let pool = List.map Wire.encode wire_corpus in
  for _ = 1 to 2000 do
    let m = mutate prng pool in
    match Wire.decode m with
    | _ -> ()
    | exception Sexp.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "Wire.decode raised %s on %S" (Printexc.to_string e)
          (Bytes.to_string m)
  done

let test_fuzz_frame_decode () =
  let prng = Mgmt.Faults.Prng.create 987 in
  let pool =
    List.mapi
      (fun i m ->
        Mgmt.Frame.encode
          { Mgmt.Frame.src_device = "id-A"; dst_device = "id-NM"; seq = i; payload = Wire.encode m })
      wire_corpus
  in
  for _ = 1 to 2000 do
    let m = mutate prng pool in
    match Mgmt.Frame.decode m with
    | _ -> ()
    | exception Mgmt.Frame.Bad_frame _ -> ()
    | exception e -> Alcotest.failf "Frame.decode raised %s" (Printexc.to_string e)
  done

let test_fuzz_schedule_decode () =
  let prng = Mgmt.Faults.Prng.create 555 in
  let pool =
    List.map
      (fun seed -> Bytes.of_string (Chaos.Schedule.to_string (Chaos.Schedule.generate ~seed ~ticks:6 ())))
      [ 1; 2; 3; 4; 5 ]
  in
  for _ = 1 to 1000 do
    let m = Bytes.to_string (mutate prng pool) in
    match Chaos.Schedule.of_string m with
    | _ -> ()
    | exception Sexp.Parse_error _ -> ()
    | exception e -> Alcotest.failf "Schedule.of_string raised %s" (Printexc.to_string e)
  done

(* Peer_msg rides opaquely inside Convey/Fed_relay frames, so its sexp
   codec sees the same hostile bytes the Wire codec does — every variant
   in the corpus, including the int32-keyed gre-params whose parse once
   leaked a bare [Failure]. *)
let peer_msg_corpus =
  [
    Peer_msg.Gre_params
      { pipe = "gre0"; ikey = 0x1234_5678l; okey = Int32.min_int; use_seq = true; use_csum = false };
    Peer_msg.Gre_params_ack { pipe = "gre0" };
    Peer_msg.Lfv_request
      { purpose = "endpoint"; fields = [ "addr"; "plen" ]; own = [ ("addr", "10.0.0.1") ] };
    Peer_msg.Lfv_reply { purpose = "nexthop"; fields = [ ("addr", "10.0.0.2"); ("plen", "24") ] };
    Peer_msg.Mpls_label_bind { pipe = "lsp1"; label = 42; nexthop = "10.0.1.1" };
    Peer_msg.Vlan_vid_bind { pipe = "trunk0"; vid = 101 };
    Peer_msg.Vlan_vid_ack { pipe = "trunk0" };
  ]

let test_fuzz_peer_msg_decode () =
  let prng = Mgmt.Faults.Prng.create 4242 in
  let pool =
    List.map (fun m -> Bytes.of_string (Sexp.to_string (Peer_msg.to_sexp m))) peer_msg_corpus
  in
  for _ = 1 to 2000 do
    let m = Bytes.to_string (mutate prng pool) in
    match Peer_msg.of_sexp (Sexp.of_string m) with
    | _ -> ()
    | exception Sexp.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "Peer_msg.of_sexp raised %s on %S" (Printexc.to_string e) m
  done;
  (* round-trip sanity: every corpus entry survives encode/decode *)
  List.iter
    (fun m ->
      let m' = Peer_msg.of_sexp (Sexp.of_string (Sexp.to_string (Peer_msg.to_sexp m))) in
      if not (Peer_msg.equal m m') then
        Alcotest.failf "Peer_msg round-trip changed %a" Peer_msg.pp m)
    peer_msg_corpus

(* The trace-context and span codecs see hostile bytes too: the ctx rides
   inside every Traced frame, and spans are serialized whole into chaos
   violation reports. Same contract as Wire.decode — only Parse_error. *)
let ctx_corpus =
  [
    { Obs.Trace.goal = 1; span = 1; parent = 0 };
    { Obs.Trace.goal = 3; span = 12; parent = 7 };
    { Obs.Trace.goal = max_int; span = max_int - 1; parent = max_int - 2 };
  ]

let span_corpus =
  [
    {
      Obs.Trace.s_goal = 1;
      s_id = 1;
      s_parent = 0;
      s_name = "fed-goal";
      s_station = "id-NM-W";
      s_start = 0;
      s_end = 2;
      s_status = "ok";
      s_events = [ (0, "t0 sent"); (1, "retry 1") ];
    };
    {
      Obs.Trace.s_goal = 1;
      s_id = 5;
      s_parent = 4;
      s_name = "exec:id-R1";
      s_station = "id-NM-E";
      s_start = 3;
      s_end = -1;
      s_status = "";
      s_events = [];
    };
    {
      Obs.Trace.s_goal = 7;
      s_id = 9;
      s_parent = 7;
      s_name = "bundle:id-C (retry)";
      s_station = "id-NM";
      s_start = 2;
      s_end = 2;
      s_status = "failed: device unreachable: id-C";
      s_events = [ (2, "shed p3") ];
    };
  ]

let test_fuzz_obs_codec () =
  let prng = Mgmt.Faults.Prng.create 2718 in
  let pool =
    List.map (fun s -> Bytes.of_string (Obs_codec.span_to_string s)) span_corpus
    @ List.map (fun c -> Bytes.of_string (Sexp.to_string (Obs_codec.ctx_to_sexp c))) ctx_corpus
  in
  for _ = 1 to 2000 do
    let m = Bytes.to_string (mutate prng pool) in
    (match Obs_codec.span_of_string m with
    | _ -> ()
    | exception Sexp.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "span_of_string raised %s on %S" (Printexc.to_string e) m);
    match Obs_codec.ctx_of_sexp (Sexp.of_string m) with
    | _ -> ()
    | exception Sexp.Parse_error _ -> ()
    | exception e -> Alcotest.failf "ctx_of_sexp raised %s on %S" (Printexc.to_string e) m
  done;
  (* round-trip sanity: contexts, spans, and a Traced frame through the
     full Wire codec *)
  List.iter
    (fun c ->
      if Obs_codec.ctx_of_sexp (Obs_codec.ctx_to_sexp c) <> c then
        Alcotest.fail "ctx round-trip changed the context")
    ctx_corpus;
  List.iter
    (fun s ->
      if Obs_codec.span_of_string (Obs_codec.span_to_string s) <> s then
        Alcotest.failf "span round-trip changed %s" s.Obs.Trace.s_name)
    span_corpus;
  List.iter
    (fun c ->
      let w = Wire.Traced { ctx = c; msg = Wire.Ack { req = 1 } } in
      if Wire.trace_of (Wire.decode (Wire.encode w)) <> Some c then
        Alcotest.fail "Traced frame round-trip lost the context")
    ctx_corpus

let test_agent_drops_malformed () =
  let v = Scenarios.build_vpn () in
  let agent = List.assoc "A" v.Scenarios.agents in
  let before = Agent.malformed_drops agent in
  Agent.handle agent ~src:"id-NM" (Bytes.of_string "((((");
  Agent.handle agent ~src:"id-NM" (Bytes.of_string "(bundle not-an-int)");
  Agent.handle agent ~src:"id-NM" (Bytes.of_string "");
  check tint "three malformed frames counted, none raised" (before + 3)
    (Agent.malformed_drops agent);
  (* the agent still works afterwards *)
  check tbool "agent still answers" true (Agent.modules agent <> [])

(* --- HA failure detection under overload ----------------------------------- *)

let tick_ns = 500_000_000L

let build_pair ?fault_seed () =
  let d = Scenarios.build_diamond ?fault_seed () in
  let net = d.Scenarios.dtb.Netsim.Testbeds.dia_net in
  let standby =
    Nm.create ~transport:d.Scenarios.dtransport ~chan:d.Scenarios.dchan ~net
      ~my_id:Scenarios.standby_station_id ()
  in
  let p, s = Ha.pair ~primary:d.Scenarios.dnm ~standby () in
  (d, net, p, s)

let step net p s tick =
  ignore
    (Netsim.Net.run_until net
       ~deadline:(Int64.add (Netsim.Event_queue.now (Netsim.Net.eq net)) tick_ns));
  Ha.tick p ~tick;
  Ha.tick s ~tick

let storm_burst d n =
  for i = 1 to 800 do
    Mgmt.Channel.send d.Scenarios.dchan ~src:Scenarios.nm_station_id
      ~dst:(List.nth d.Scenarios.dscope (i mod List.length d.Scenarios.dscope))
      (perf (900_000_000 + (n * 1000) + i))
  done

let test_no_spurious_failover_under_storm () =
  let d, net, p, s = build_pair ~fault_seed:21 () in
  (match Nm.achieve (Ha.nm p) d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve: %s" e);
  Mgmt.Admission.reset_counters d.Scenarios.dadmission;
  for t = 0 to 5 do
    storm_burst d t;
    step net p s t
  done;
  check tint "no promotion while heartbeats ride P0" 0 (Ha.promotions s);
  check tbool "heartbeats kept flowing through the storm" true (Ha.heartbeats_seen s > 0);
  let c = Mgmt.Admission.counters d.Scenarios.dadmission in
  check tbool "the storm was shed" true (c.(3).Mgmt.Admission.shed > 0);
  check tint "no P0 frame shed" 0 (c.(0).Mgmt.Admission.shed + c.(0).Mgmt.Admission.expired);
  check tint "no P1 frame shed" 0 (c.(1).Mgmt.Admission.shed + c.(1).Mgmt.Admission.expired);
  check tbool "network still converged" true (Scenarios.diamond_reachable d)

let test_real_crash_detected_under_storm () =
  let d, net, p, s = build_pair ~fault_seed:22 () in
  (match Nm.achieve (Ha.nm p) d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve: %s" e);
  for t = 0 to 2 do
    storm_burst d t;
    step net p s t
  done;
  (* the primary really dies mid-storm; detection must not be any slower
     than the storm-free bound of the failover tests *)
  Mgmt.Faults.crash d.Scenarios.dfaults Scenarios.nm_station_id;
  Ha.set_alive p false;
  let crash_tick = 3 in
  let promoted = ref None in
  (try
     for t = crash_tick to crash_tick + 8 do
       storm_burst d t;
       step net p s t;
       if !promoted = None && Ha.role s = Ha.Primary then begin
         promoted := Some t;
         raise Exit
       end
     done
   with Exit -> ());
  (match !promoted with
  | None -> Alcotest.fail "standby never promoted under the storm"
  | Some t -> check tbool "detected within the failure-detector bound" true (t - crash_tick <= 4));
  let c = Mgmt.Admission.counters d.Scenarios.dadmission in
  check tint "no P0 frame shed during detection" 0
    (c.(0).Mgmt.Admission.shed + c.(0).Mgmt.Admission.expired)

(* --- telemetry shed-feedback backoff --------------------------------------- *)

let test_telemetry_backoff () =
  let d = Scenarios.build_diamond () in
  let base = 250_000_000L in
  let tel = Telemetry.create ~period_ns:base ~scope:[] d.Scenarios.dnm in
  let shed = ref 0 in
  Telemetry.set_shed_probe tel (fun () -> !shed);
  Telemetry.maybe_scrape tel;
  check tbool "period at base while quiet" true (Telemetry.period_ns tel = base);
  (* sheds keep growing: the period doubles each look, capped at 8x *)
  for _ = 1 to 6 do
    shed := !shed + 10;
    Telemetry.maybe_scrape tel
  done;
  check tbool "period backed off to the cap" true
    (Telemetry.period_ns tel = Int64.mul base 8L);
  check tint "three doublings to reach 8x" 3 (Telemetry.backoffs tel);
  (* sheds stop: the period halves back down to base, never below *)
  for _ = 1 to 6 do
    Telemetry.maybe_scrape tel
  done;
  check tbool "period decayed back to base" true (Telemetry.period_ns tel = base)

let () =
  Alcotest.run "overload"
    [
      ( "classify",
        [ Alcotest.test_case "wire messages map to the right class" `Quick test_wire_priorities ]
      );
      ( "admission",
        [
          Alcotest.test_case "P0/P1 bypass a jammed channel" `Quick test_p0_bypasses_exhaustion;
          Alcotest.test_case "lowest priority is shed first" `Quick
            test_shed_lowest_priority_first;
          Alcotest.test_case "refill drains probes before telemetry" `Quick
            test_refill_drains_p2_before_p3;
          Alcotest.test_case "stale telemetry expires" `Quick test_p3_deadline_expiry;
          Alcotest.test_case "budgets are per peer, backlog is shared" `Quick
            test_per_peer_buckets;
        ] );
      ( "reliable",
        [ Alcotest.test_case "pending buffers are bounded" `Quick test_reliable_pending_cap ] );
      ( "fuzz",
        [
          Alcotest.test_case "Wire.decode never raises undeclared" `Quick test_fuzz_wire_decode;
          Alcotest.test_case "Frame.decode never raises undeclared" `Quick
            test_fuzz_frame_decode;
          Alcotest.test_case "Schedule.of_string never raises undeclared" `Quick
            test_fuzz_schedule_decode;
          Alcotest.test_case "Peer_msg.of_sexp never raises undeclared" `Quick
            test_fuzz_peer_msg_decode;
          Alcotest.test_case "trace ctx/span codecs never raise undeclared" `Quick
            test_fuzz_obs_codec;
          Alcotest.test_case "agents drop malformed frames" `Quick test_agent_drops_malformed;
        ] );
      ( "ha-under-storm",
        [
          Alcotest.test_case "no spurious failover" `Quick test_no_spurious_failover_under_storm;
          Alcotest.test_case "real crash still detected" `Quick
            test_real_crash_detected_under_storm;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "scrape period backs off on sheds" `Quick test_telemetry_backoff ]
      );
    ]
