(* Scenario tests for the NM high-availability subsystem (Ha): heartbeat
   failure detection and automatic promotion, epoch fencing of a deposed
   primary (split-brain containment), exactly-once completion of a script
   the primary died in the middle of, double failover, replication
   isolation and duplicate takeover announcements. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tick_ns = 500_000_000L

(* The structural part of a show_actual report: per-module state keys,
   minus transient pending[..] negotiation state. *)
let structural_keys nm dev =
  match Nm.show_actual nm dev with
  | None -> Alcotest.failf "no showActual answer from %s" dev
  | Some state ->
      List.concat_map
        (fun ((m : Ids.t), kvs) ->
          List.filter_map
            (fun (k, _) ->
              if String.length k >= 8 && String.sub k 0 8 = "pending[" then None
              else Some (Ids.qualified m ^ "/" ^ k))
            kvs)
        state
      |> List.sort_uniq compare

(* A diamond deployment managed by an HA pair: the testbed's NM as primary
   plus a warm standby on the same management channel. *)
let build_pair ?fault_seed () =
  let d = Scenarios.build_diamond ?fault_seed () in
  let net = d.Scenarios.dtb.Netsim.Testbeds.dia_net in
  let standby =
    Nm.create ~transport:d.Scenarios.dtransport ~chan:d.Scenarios.dchan ~net
      ~my_id:Scenarios.standby_station_id ()
  in
  let p, s = Ha.pair ~primary:d.Scenarios.dnm ~standby () in
  (d, net, p, s)

(* One harness tick: let half a second of simulated time pass (delivering
   heartbeats, acks, retries), then give both nodes their HA tick. *)
let step net p s tick =
  ignore
    (Netsim.Net.run_until net
       ~deadline:(Int64.add (Netsim.Event_queue.now (Netsim.Net.eq net)) tick_ns));
  Ha.tick p ~tick;
  Ha.tick s ~tick

let achieve_or_fail nm goal =
  match Nm.achieve nm goal with Ok _ -> () | Error e -> Alcotest.failf "achieve: %s" e

(* Drive ticks [from..from+max] until the standby holds the primary role;
   returns the tick at which it promoted. *)
let drive_to_promotion ?(max = 10) net p s ~from =
  let promoted = ref None in
  (try
     for t = from to from + max do
       step net p s t;
       if !promoted = None && Ha.role s = Ha.Primary then begin
         promoted := Some t;
         raise Exit
       end
     done
   with Exit -> ());
  match !promoted with Some t -> t | None -> Alcotest.fail "standby never promoted"

(* --- heartbeat loss -> promotion ----------------------------------------------- *)

let test_promotion_on_heartbeat_loss () =
  let d, net, p, s = build_pair ~fault_seed:7 () in
  achieve_or_fail (Ha.nm p) d.Scenarios.dgoal;
  for t = 0 to 3 do
    step net p s t
  done;
  check tint "no promotion while heartbeats flow" 0 (Ha.promotions s);
  check tbool "heartbeats observed" true (Ha.heartbeats_seen s > 0);
  check tbool "journal replicated" true
    (List.length (Intent.entries (Nm.journal (Ha.nm s)))
    = List.length (Intent.entries (Nm.journal (Ha.nm p))));
  (* the primary dies: heartbeats stop *)
  Mgmt.Faults.crash d.Scenarios.dfaults Scenarios.nm_station_id;
  Ha.set_alive p false;
  let crash_tick = 4 in
  let promoted_at = drive_to_promotion net p s ~from:crash_tick in
  check tbool "detected within four ticks" true (promoted_at - crash_tick <= 4);
  check tint "promotion fenced a fresh epoch" 2 (Ha.epoch s);
  check tint "exactly one promotion" 1 (Ha.promotions s);
  (* the takeover announcement redirected every agent to the new leader *)
  ignore (Netsim.Net.run net);
  List.iter
    (fun (id, a) ->
      check Alcotest.string (id ^ " follows the new NM") Scenarios.standby_station_id
        (Agent.nm_device a);
      check tint (id ^ " adopted the new epoch") 2 (Agent.nm_epoch a))
    d.Scenarios.dagents;
  check tbool "network still carries traffic" true (Scenarios.diamond_reachable d)

(* --- split brain: fenced old primary ------------------------------------------- *)

let test_fenced_old_primary () =
  let d, net, p, s = build_pair ~fault_seed:8 () in
  achieve_or_fail (Ha.nm p) d.Scenarios.dgoal;
  for t = 0 to 2 do
    step net p s t
  done;
  (* partition the NMs from each other; both still reach the agents.
     Broadcasts consult the (src, broadcast) drop entry, so the takeover
     announcement must be blocked there too or the old primary would hear
     of the new epoch immediately. *)
  let a = Scenarios.nm_station_id and b = Scenarios.standby_station_id in
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:a ~dst:b 1.0;
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:b ~dst:a 1.0;
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:b ~dst:Mgmt.Frame.broadcast 1.0;
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:a ~dst:Mgmt.Frame.broadcast 1.0;
  let t0 = drive_to_promotion net p s ~from:3 in
  (* two primaries exist -- but never under the same epoch *)
  check tbool "old primary still believes it leads" true (Ha.role p = Ha.Primary);
  check tint "new leader epoch" 2 (Ha.epoch s);
  check tint "deposed epoch stayed behind" 1 (Ha.epoch p);
  (* the deposed primary tries to configure an agent: the frame carries
     epoch 1, the agents are at epoch 2 -> fenced out, nothing applied *)
  let rejects_before =
    List.fold_left (fun acc (_, ag) -> acc + Agent.fenced_rejects ag) 0 d.Scenarios.dagents
  in
  let target = Ids.v "IP" "i1" "id-B1" in
  Nm.assign_address (Ha.nm p) ~target ~addr:"10.0.9.1" ~plen:24;
  let rejects_after =
    List.fold_left (fun acc (_, ag) -> acc + Agent.fenced_rejects ag) 0 d.Scenarios.dagents
  in
  check tbool "agents fenced the stale-epoch request" true (rejects_after > rejects_before);
  check tbool "address not applied by the deposed primary" false
    (Netsim.Device.is_local_addr d.Scenarios.dtb.Netsim.Testbeds.dia_b1
       (Packet.Ipv4_addr.of_string "10.0.9.1"));
  check tbool "request stranded in flight" true (Nm.inflight_count (Ha.nm p) > 0);
  (* the partition heals: the first epoch-2 frame demotes the old primary,
     which surrenders its stranded request to the new leader *)
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:a ~dst:b 0.0;
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:b ~dst:a 0.0;
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:b ~dst:Mgmt.Frame.broadcast 0.0;
  Mgmt.Faults.set_drop d.Scenarios.dfaults ~src:a ~dst:Mgmt.Frame.broadcast 0.0;
  for t = t0 + 1 to t0 + 3 do
    step net p s t
  done;
  check tbool "old primary stepped down" true (Ha.role p = Ha.Standby);
  check tint "exactly one demotion" 1 (Ha.demotions p);
  check tint "deposed node adopted the epoch" 2 (Ha.epoch p);
  check tbool "exactly one acting primary" true
    (List.length (List.filter (fun h -> Ha.role h = Ha.Primary) [ p; s ]) = 1);
  (* the handed-off request is re-issued by the new leader and now lands *)
  Nm.flush_inflight (Ha.nm s);
  check tbool "hand-off delivered the stranded assignment" true
    (Netsim.Device.is_local_addr d.Scenarios.dtb.Netsim.Testbeds.dia_b1
       (Packet.Ipv4_addr.of_string "10.0.9.1"));
  check tint "nothing left in flight at the new leader" 0 (Nm.inflight_count (Ha.nm s))

(* --- crash mid-achieve: takeover completes the script exactly once ------------- *)

let test_crash_mid_achieve_exactly_once () =
  let target = Ids.v "IP" "k" "id-C" in
  let addr = "10.0.9.1" in
  (* the reference: what an undisturbed run converges to *)
  Nm.set_incarnations 0;
  let dr = Scenarios.build_diamond () in
  achieve_or_fail dr.Scenarios.dnm dr.Scenarios.dgoal;
  Nm.assign_address dr.Scenarios.dnm ~target ~addr ~plen:24;
  let reference =
    List.map (fun dev -> (dev, structural_keys dr.Scenarios.dnm dev)) dr.Scenarios.dscope
  in
  (* the HA run: id-C drops off the channel mid-configuration, so both
     journalled intents are unrealised — and one request is stranded in
     flight, transport-unconfirmed — when the primary dies *)
  Nm.set_incarnations 0;
  let d, net, p, s = build_pair () in
  for t = 0 to 1 do
    step net p s t
  done;
  Mgmt.Faults.partition d.Scenarios.dfaults "id-C";
  (match Nm.achieve (Ha.nm p) d.Scenarios.dgoal with
  | Ok _ -> Alcotest.fail "achieve should fail with id-C partitioned"
  | Error _ -> ());
  Nm.assign_address (Ha.nm p) ~target ~addr ~plen:24;
  check tbool "request left in flight at the primary" true
    (Nm.inflight_count (Ha.nm p) > 0);
  (* continuous replication already shipped the write-ahead entries and
     the in-flight delta *)
  ignore (Netsim.Net.run net);
  check tbool "standby replicated the in-flight set" true (Ha.replica_inflight_count s > 0);
  check tbool "standby replicated the write-ahead journal" true
    (List.length (Intent.entries (Nm.journal (Ha.nm s)))
    = List.length (Intent.entries (Nm.journal (Ha.nm p))));
  Mgmt.Faults.crash d.Scenarios.dfaults Scenarios.nm_station_id;
  Ha.set_alive p false;
  let t0 = drive_to_promotion net p s ~from:2 in
  check tbool "promotion replayed the unconfirmed requests" true (Ha.replayed s > 0);
  (* the agent partition heals; the replayed request is re-driven until
     confirmed *)
  Mgmt.Faults.heal d.Scenarios.dfaults "id-C";
  for t = t0 + 1 to t0 + 4 do
    step net p s t
  done;
  Nm.flush_inflight (Ha.nm s);
  check tint "every replayed request confirmed" 0 (Nm.inflight_count (Ha.nm s));
  check tbool "stranded address applied under the new leader" true
    (Netsim.Device.is_local_addr d.Scenarios.dtb.Netsim.Testbeds.dia_c
       (Packet.Ipv4_addr.of_string addr));
  (* re-realise the journalled intents, as the monitor would on its next
     tick; agents answer duplicate requests from cache and execute
     re-issued slices idempotently *)
  Nm.recover (Ha.nm s);
  check tbool "network converged under the new leader" true (Scenarios.diamond_reachable d);
  List.iter
    (fun (dev, keys) ->
      check
        Alcotest.(list string)
        ("clean-run structural state at " ^ dev)
        keys (structural_keys (Ha.nm s) dev))
    reference;
  check tint "takeover did not duplicate intents" 2 (List.length (Nm.intents (Ha.nm s)));
  check tbool "no duplicate-execution errors" true (Nm.errors (Ha.nm s) = [])

(* --- double failover ------------------------------------------------------------ *)

let test_double_failover () =
  let d, net, p, s = build_pair ~fault_seed:13 () in
  achieve_or_fail (Ha.nm p) d.Scenarios.dgoal;
  for t = 0 to 2 do
    step net p s t
  done;
  (* first failover: the primary dies, the standby takes over under epoch 2 *)
  Mgmt.Faults.crash d.Scenarios.dfaults Scenarios.nm_station_id;
  Ha.set_alive p false;
  let t1 = drive_to_promotion net p s ~from:3 in
  (* the old primary revives, hears the new leader and steps down *)
  Mgmt.Faults.restart d.Scenarios.dfaults Scenarios.nm_station_id;
  Ha.set_alive p true;
  let t2 = ref (t1 + 1) in
  while Ha.role p = Ha.Primary && !t2 <= t1 + 6 do
    step net p s !t2;
    incr t2
  done;
  check tbool "revived primary demoted itself" true (Ha.role p = Ha.Standby);
  (* second failover: the new leader dies in turn; the revived node must
     detect it and promote past epoch 2 *)
  Mgmt.Faults.crash d.Scenarios.dfaults Scenarios.standby_station_id;
  Ha.set_alive s false;
  let promoted = ref None in
  (try
     for t = !t2 to !t2 + 10 do
       step net p s t;
       if Ha.role p = Ha.Primary then begin
         promoted := Some t;
         raise Exit
       end
     done
   with Exit -> ());
  (match !promoted with
  | None -> Alcotest.fail "original node never re-promoted"
  | Some _ -> ());
  check tint "second failover fenced epoch 3" 3 (Ha.epoch p);
  check tint "one promotion per node" 1 (Ha.promotions s);
  check tint "re-promotion counted" 1 (Ha.promotions p);
  ignore (Netsim.Net.run net);
  List.iter
    (fun (id, a) ->
      check Alcotest.string (id ^ " follows the re-promoted NM") Scenarios.nm_station_id
        (Agent.nm_device a);
      check tint (id ^ " at epoch 3") 3 (Agent.nm_epoch a))
    d.Scenarios.dagents;
  check tbool "network survives two failovers" true (Scenarios.diamond_reachable d)

(* --- replication isolation (no aliasing primary <-> standby) -------------------- *)

let test_replicate_isolation () =
  let d = Scenarios.build_diamond () in
  let net = d.Scenarios.dtb.Netsim.Testbeds.dia_net in
  achieve_or_fail d.Scenarios.dnm d.Scenarios.dgoal;
  let standby =
    Nm.create ~transport:d.Scenarios.dtransport ~chan:d.Scenarios.dchan ~net
      ~my_id:Scenarios.standby_station_id ()
  in
  Nm.replicate_to d.Scenarios.dnm ~standby;
  let primary_len = List.length (Intent.entries (Nm.journal d.Scenarios.dnm)) in
  check tint "journal entries copied" primary_len
    (List.length (Intent.entries (Nm.journal standby)));
  (* mutations on the primary after replication must not bleed through *)
  (match Nm.intents d.Scenarios.dnm with
  | i :: _ -> i.Intent.status <- Intent.Failed
  | [] -> Alcotest.fail "no intents on the primary");
  Topology.set_reachable (Nm.topology d.Scenarios.dnm) "id-B1" false;
  (match Nm.intents standby with
  | i :: _ ->
      check tbool "standby intent record is a fresh object" true
        (i.Intent.status <> Intent.Failed)
  | [] -> Alcotest.fail "no intents replicated");
  check tbool "standby topology is a deep copy" true
    (Topology.is_reachable (Nm.topology standby) "id-B1");
  (* and new journal growth on the primary stays local until shipped *)
  (match Nm.intents d.Scenarios.dnm with
  | i :: _ -> (
      i.Intent.status <- Intent.Active;
      match i.Intent.script with
      | Some sc ->
          Nm.teardown d.Scenarios.dnm sc;
          check tbool "primary journal grew" true
            (List.length (Intent.entries (Nm.journal d.Scenarios.dnm)) > primary_len);
          check tint "standby journal unchanged without shipping" primary_len
            (List.length (Intent.entries (Nm.journal standby)))
      | None -> Alcotest.fail "intent lost its script")
  | [] -> ())

(* --- duplicate / stale takeover announcements ----------------------------------- *)

let test_takeover_duplicates_and_stale_epochs () =
  let d = Scenarios.build_diamond () in
  let net = d.Scenarios.dtb.Netsim.Testbeds.dia_net in
  achieve_or_fail d.Scenarios.dnm d.Scenarios.dgoal;
  let standby =
    Nm.create ~transport:d.Scenarios.dtransport ~chan:d.Scenarios.dchan ~net
      ~my_id:Scenarios.standby_station_id ()
  in
  Nm.replicate_to d.Scenarios.dnm ~standby;
  (* every frame duplicated and jittered: each agent sees the takeover
     announcement several times, in odd orders *)
  Mgmt.Faults.set_duplicate d.Scenarios.dfaults 1.0;
  Mgmt.Faults.set_jitter d.Scenarios.dfaults 5_000_000L;
  Nm.take_over standby;
  ignore (Netsim.Net.run net);
  Mgmt.Faults.set_duplicate d.Scenarios.dfaults 0.0;
  Mgmt.Faults.set_jitter d.Scenarios.dfaults 0L;
  List.iter
    (fun (id, a) ->
      check Alcotest.string (id ^ " adopted the standby") Scenarios.standby_station_id
        (Agent.nm_device a);
      check tint (id ^ " at epoch 1... bumped") 1 (Agent.nm_epoch a);
      check tint (id ^ " duplicate announcements are silent no-ops") 0
        (Agent.takeover_rejects a))
    d.Scenarios.dagents;
  (* the deposed primary re-announces itself with its stale epoch: every
     agent must reject it and stay with the new leader *)
  Nm.take_over ~epoch:1 d.Scenarios.dnm;
  ignore (Netsim.Net.run net);
  List.iter
    (fun (id, a) ->
      check Alcotest.string (id ^ " still follows the new leader") Scenarios.standby_station_id
        (Agent.nm_device a);
      check tbool (id ^ " counted the stale takeover") true (Agent.takeover_rejects a > 0))
    d.Scenarios.dagents

let () =
  Alcotest.run "ha"
    [
      ( "failover",
        [
          Alcotest.test_case "heartbeat loss promotes the standby" `Quick
            test_promotion_on_heartbeat_loss;
          Alcotest.test_case "crash mid-achieve completes exactly once" `Quick
            test_crash_mid_achieve_exactly_once;
          Alcotest.test_case "double failover" `Quick test_double_failover;
        ] );
      ( "fencing",
        [
          Alcotest.test_case "deposed primary is fenced out" `Quick test_fenced_old_primary;
          Alcotest.test_case "duplicate and stale takeovers" `Quick
            test_takeover_duplicates_and_stale_epochs;
        ] );
      ( "replication",
        [ Alcotest.test_case "replicate_to does not alias" `Quick test_replicate_isolation ] );
    ]
