(* Tests for the management channel: frame codec, out-of-band delivery, and
   the 4D-style raw flooding channel (which must work with zero data-plane
   configuration, across switches and routers, and terminate on loops). *)

open Netsim
open Mgmt

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_frame_roundtrip () =
  let f =
    { Frame.src_device = "id-A"; dst_device = "id-NM"; seq = 42; payload = Bytes.of_string "hi" }
  in
  check tbool "roundtrip" true (Frame.equal f (Frame.decode (Frame.encode f)))

let test_frame_broadcast_roundtrip () =
  let f =
    { Frame.src_device = "x"; dst_device = Frame.broadcast; seq = 0; payload = Bytes.empty }
  in
  check tbool "roundtrip" true (Frame.equal f (Frame.decode (Frame.encode f)))

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame roundtrip" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* src = string_size (int_bound 20)
         and* dst = string_size (int_bound 20)
         and* seq = int_bound 100000
         and* payload = map Bytes.of_string (string_size (int_bound 200)) in
         return (src, dst, seq, payload)))
    (fun (src_device, dst_device, seq, payload) ->
      let f = { Frame.src_device; dst_device; seq; payload } in
      Frame.equal f (Frame.decode (Frame.encode f)))

let test_oob_unicast_and_broadcast () =
  let eq = Event_queue.create () in
  let chan = Channel.Oob.create eq in
  let got_a = ref [] and got_b = ref [] in
  Channel.subscribe chan ~device_id:"a" (fun ~src p -> got_a := (src, Bytes.to_string p) :: !got_a);
  Channel.subscribe chan ~device_id:"b" (fun ~src p -> got_b := (src, Bytes.to_string p) :: !got_b);
  Channel.send chan ~src:"a" ~dst:"b" (Bytes.of_string "hello");
  Channel.send chan ~src:"b" ~dst:Frame.broadcast (Bytes.of_string "all");
  let _ = Event_queue.run eq in
  check tbool "b got unicast" true (List.mem ("a", "hello") !got_b);
  check tbool "a got broadcast" true (List.mem ("b", "all") !got_a);
  check tbool "b did not self-deliver" false (List.mem ("b", "all") !got_b)

(* Line topology: h1 - sw - r - h2, where sw is a switch and r a router with
   NO configuration at all. The raw channel must still deliver h1 -> h2. *)
let raw_line () =
  let net = Net.create () in
  let chan, attach = Channel.Raw.create () in
  let h1 = Net.add_device net ~id:"id-h1" ~name:"h1" in
  ignore (Device.add_port h1);
  let sw = Net.add_device net ~switching:true ~id:"id-sw" ~name:"sw" in
  ignore (Device.add_port sw);
  ignore (Device.add_port sw);
  let r = Net.add_device net ~id:"id-r" ~name:"r" in
  ignore (Device.add_port r);
  ignore (Device.add_port r);
  let h2 = Net.add_device net ~id:"id-h2" ~name:"h2" in
  ignore (Device.add_port h2);
  let _ = Net.connect net (h1, 0) (sw, 0) in
  let _ = Net.connect net (sw, 1) (r, 0) in
  let _ = Net.connect net (r, 1) (h2, 0) in
  List.iter attach [ h1; sw; r; h2 ];
  (net, chan, h1, h2)

let test_raw_flooding_delivery () =
  let net, chan, _, _ = raw_line () in
  let got = ref None in
  Channel.subscribe chan ~device_id:"id-h2" (fun ~src p -> got := Some (src, Bytes.to_string p));
  Channel.send chan ~src:"id-h1" ~dst:"id-h2" (Bytes.of_string "showPotential");
  let _ = Net.run net in
  check tbool "delivered without any configuration" true (!got = Some ("id-h1", "showPotential"))

let test_raw_broadcast_reaches_all () =
  let net, chan, _, _ = raw_line () in
  let seen = ref [] in
  List.iter
    (fun id -> Channel.subscribe chan ~device_id:id (fun ~src:_ _ -> seen := id :: !seen))
    [ "id-h1"; "id-sw"; "id-r"; "id-h2" ];
  Channel.send chan ~src:"id-h1" ~dst:Frame.broadcast (Bytes.of_string "hello-nm");
  let _ = Net.run net in
  List.iter
    (fun id -> check tbool (id ^ " saw broadcast") true (List.mem id !seen))
    [ "id-sw"; "id-r"; "id-h2" ];
  check tbool "source did not self-deliver" false (List.mem "id-h1" !seen)

let test_raw_loop_terminates () =
  (* Ring of three devices: flooding with per-source dedup must terminate. *)
  let net = Net.create () in
  let chan, attach = Channel.Raw.create () in
  let mk name =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port d);
    ignore (Device.add_port d);
    d
  in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  let _ = Net.connect net (a, 1) (b, 0) in
  let _ = Net.connect net (b, 1) (c, 0) in
  let _ = Net.connect net (c, 1) (a, 0) in
  List.iter attach [ a; b; c ];
  let got = ref 0 in
  Channel.subscribe chan ~device_id:"id-c" (fun ~src:_ _ -> incr got);
  Channel.send chan ~src:"id-a" ~dst:"id-c" (Bytes.of_string "x");
  let events = Net.run ~max_events:100_000 net in
  check tbool "terminated" true (events < 100_000);
  check tint "delivered exactly once" 1 !got

let test_raw_independent_of_data_plane () =
  (* Flooding still works when IP forwarding is off everywhere and no
     addresses exist — the channel the NM bootstraps from. *)
  let net, chan, h1, _ = raw_line () in
  check tint "no addresses" 0 (List.length (Device.local_addrs h1) - 1);
  let got = ref false in
  Channel.subscribe chan ~device_id:"id-h2" (fun ~src:_ _ -> got := true);
  Channel.send chan ~src:"id-h1" ~dst:"id-h2" (Bytes.of_string "boot");
  let _ = Net.run net in
  check tbool "delivered" true !got

let test_raw_stats_count () =
  let net, chan, _, _ = raw_line () in
  Channel.subscribe chan ~device_id:"id-h2" (fun ~src:_ _ -> ());
  Channel.send chan ~src:"id-h1" ~dst:"id-h2" (Bytes.of_string "m");
  let _ = Net.run net in
  check tint "sent" 1 (Channel.stats chan).Channel.frames_sent;
  check tint "delivered" 1 (Channel.stats chan).Channel.frames_delivered

(* flooding delivers on arbitrary random tree topologies with mixed
   switches and routers, all unconfigured *)
let prop_raw_delivery_on_random_trees =
  QCheck.Test.make ~name:"raw channel delivers across random trees" ~count:30
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 2 10) (int_bound 1000)))
    (fun (n, seed) ->
      let net = Net.create () in
      let chan, attach = Channel.Raw.create () in
      let devs =
        Array.init n (fun i ->
            let switching = (seed + i) mod 3 = 0 in
            let d =
              Net.add_device net ~switching ~id:(Printf.sprintf "id-%d" i)
                ~name:(Printf.sprintf "d%d" i)
            in
            (* enough ports for a tree plus slack *)
            for _ = 0 to n do
              ignore (Device.add_port d)
            done;
            d)
      in
      (* deterministic pseudo-random tree: node i attaches to some j < i *)
      let next_port = Array.make n 0 in
      for i = 1 to n - 1 do
        let parent = (seed * (i + 7)) mod i in
        let pp = next_port.(parent) in
        next_port.(parent) <- pp + 1;
        let pi = next_port.(i) in
        next_port.(i) <- pi + 1;
        ignore (Net.connect net (devs.(parent), pp) (devs.(i), pi))
      done;
      Array.iter attach devs;
      let got = ref false in
      Channel.subscribe chan
        ~device_id:(Printf.sprintf "id-%d" (n - 1))
        (fun ~src:_ _ -> got := true);
      Channel.send chan ~src:"id-0" ~dst:(Printf.sprintf "id-%d" (n - 1)) (Bytes.of_string "m");
      let events = Net.run ~max_events:1_000_000 net in
      events < 1_000_000 && !got)

(* --- sliding-window suppression state ------------------------------------ *)

let test_raw_seen_window_bounded () =
  (* With a tiny window, the per-source suppression table must evict old
     sequence numbers instead of growing with every frame sent. *)
  let net = Net.create () in
  let chan, attach = Channel.Raw.create ~window:8 () in
  let mk name =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port d);
    d
  in
  let a = mk "a" and b = mk "b" in
  let _ = Net.connect net (a, 0) (b, 0) in
  List.iter attach [ a; b ];
  let got = ref 0 in
  Channel.subscribe chan ~device_id:"id-b" (fun ~src:_ _ -> incr got);
  for i = 1 to 100 do
    Channel.send chan ~src:"id-a" ~dst:"id-b" (Bytes.of_string (string_of_int i));
    ignore (Net.run net)
  done;
  check tint "all delivered" 100 !got;
  check tbool
    (Printf.sprintf "seen table bounded by window (high water %d <= 8)"
       (Channel.stats chan).Channel.seen_high_water)
    true
    ((Channel.stats chan).Channel.seen_high_water <= 8)

let test_raw_unknown_source_drops () =
  (* A send from a device that is not attached (e.g. crashed mid-flight)
     must not raise — it is dropped and counted. *)
  let _, chan, _, _ = raw_line () in
  Channel.send chan ~src:"id-ghost" ~dst:"id-h2" (Bytes.of_string "boo");
  check tint "dropped, not raised" 1 (Channel.stats chan).Channel.frames_dropped

(* --- fault injection ------------------------------------------------------ *)

(* One lossy Oob run: [n] unicasts under [drop] probability; returns
   (delivered count, fault counters). *)
let lossy_oob_run ~seed ~drop n =
  let eq = Event_queue.create () in
  let base = Channel.Oob.create eq in
  let chan, faults = Faults.wrap ~seed ~eq base in
  Faults.set_drop faults drop;
  let got = ref 0 in
  Channel.subscribe chan ~device_id:"b" (fun ~src:_ _ -> incr got);
  for i = 1 to n do
    Channel.send chan ~src:"a" ~dst:"b" (Bytes.of_string (string_of_int i))
  done;
  let _ = Event_queue.run eq in
  (!got, Faults.counters faults)

let test_faults_drop_and_determinism () =
  let got1, c1 = lossy_oob_run ~seed:7 ~drop:0.3 1000 in
  let got2, c2 = lossy_oob_run ~seed:7 ~drop:0.3 1000 in
  check tbool "some frames dropped" true (c1.Faults.dropped > 0);
  check tbool "some frames survived" true (got1 > 0);
  check tint "same seed => same delivery" got1 got2;
  check tint "same seed => same drop count" c1.Faults.dropped c2.Faults.dropped;
  let got3, c3 = lossy_oob_run ~seed:8 ~drop:0.3 1000 in
  check tbool "different seed => different faults" true
    (got3 <> got1 || c3.Faults.dropped <> c1.Faults.dropped)

let test_faults_crash_blocks_both_ways () =
  let eq = Event_queue.create () in
  let chan, faults = Faults.wrap ~seed:1 ~eq (Channel.Oob.create eq) in
  let got = ref 0 in
  Channel.subscribe chan ~device_id:"b" (fun ~src:_ _ -> incr got);
  Faults.crash faults "b";
  Channel.send chan ~src:"a" ~dst:"b" (Bytes.of_string "to-dead");
  Channel.send chan ~src:"b" ~dst:"a" (Bytes.of_string "from-dead");
  let _ = Event_queue.run eq in
  check tint "nothing through a crashed endpoint" 0 !got;
  check tint "both counted" 2 (Faults.counters faults).Faults.crash_drops;
  Faults.restart faults "b";
  Channel.send chan ~src:"a" ~dst:"b" (Bytes.of_string "alive");
  let _ = Event_queue.run eq in
  check tint "delivery resumes after restart" 1 !got

(* --- reliable delivery over a lossy channel ------------------------------- *)

let test_reliable_over_lossy_channel () =
  let eq = Event_queue.create () in
  let faulty, faults = Faults.wrap ~seed:3 ~eq (Channel.Oob.create eq) in
  Faults.set_drop faults 0.3;
  Faults.set_duplicate faults 0.2;
  let chan, rel = Reliable.create ~eq faulty in
  let got = ref [] in
  (* the sender endpoint must be subscribed too: acks come back to it *)
  Channel.subscribe chan ~device_id:"a" (fun ~src:_ _ -> ());
  Channel.subscribe chan ~device_id:"b" (fun ~src:_ p -> got := Bytes.to_string p :: !got);
  for i = 1 to 200 do
    Channel.send chan ~src:"a" ~dst:"b" (Bytes.of_string (string_of_int i))
  done;
  let _ = Event_queue.run eq in
  let c = Reliable.counters rel in
  check tint "every payload delivered despite 30% loss" 200 (List.length !got);
  check tint "exactly once each" 200 (List.sort_uniq compare !got |> List.length);
  check tbool "losses were retransmitted" true (c.Reliable.retransmits > 0);
  check tbool "duplicates were suppressed" true (c.Reliable.duplicates > 0);
  check tint "nothing abandoned" 0 c.Reliable.gave_up;
  check tint "no unacked residue" 0 (Reliable.in_flight rel)

let test_reliable_gives_up_on_dead_destination () =
  let eq = Event_queue.create () in
  let faulty, faults = Faults.wrap ~seed:3 ~eq (Channel.Oob.create eq) in
  let chan, rel = Reliable.create ~eq faulty in
  Channel.subscribe chan ~device_id:"a" (fun ~src:_ _ -> ());
  Channel.subscribe chan ~device_id:"b" (fun ~src:_ _ -> ());
  let abandoned = ref [] in
  Reliable.on_give_up rel (fun ~src ~dst -> abandoned := (src, dst) :: !abandoned);
  Faults.crash faults "b";
  Channel.send chan ~src:"a" ~dst:"b" (Bytes.of_string "anyone there?");
  let _ = Event_queue.run eq in
  check tint "retried the full budget" Reliable.default_config.Reliable.max_retries
    (Reliable.counters rel).Reliable.retransmits;
  check tbool "give-up listener told" true (List.mem ("a", "b") !abandoned);
  check tint "pending cleaned up" 0 (Reliable.in_flight rel)

let () =
  Alcotest.run "mgmt"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "broadcast roundtrip" `Quick test_frame_broadcast_roundtrip;
          QCheck_alcotest.to_alcotest prop_frame_roundtrip;
        ] );
      ( "oob",
        [ Alcotest.test_case "unicast + broadcast" `Quick test_oob_unicast_and_broadcast ] );
      ( "raw",
        [
          Alcotest.test_case "flooding delivery" `Quick test_raw_flooding_delivery;
          Alcotest.test_case "broadcast reaches all" `Quick test_raw_broadcast_reaches_all;
          Alcotest.test_case "loops terminate" `Quick test_raw_loop_terminates;
          Alcotest.test_case "independent of data plane" `Quick test_raw_independent_of_data_plane;
          Alcotest.test_case "stats" `Quick test_raw_stats_count;
          Alcotest.test_case "seen table bounded" `Quick test_raw_seen_window_bounded;
          Alcotest.test_case "unknown source drops" `Quick test_raw_unknown_source_drops;
          QCheck_alcotest.to_alcotest prop_raw_delivery_on_random_trees;
        ] );
      ( "faults",
        [
          Alcotest.test_case "seeded drop determinism" `Quick test_faults_drop_and_determinism;
          Alcotest.test_case "crash blocks both ways" `Quick test_faults_crash_blocks_both_ways;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "delivery over 30% loss" `Quick test_reliable_over_lossy_channel;
          Alcotest.test_case "gives up on dead destination" `Quick
            test_reliable_gives_up_on_dead_destination;
        ] );
    ]
