(* The benchmark harness: regenerates every table and figure of the paper
   (printed to stdout) and then times the machinery behind each of them with
   Bechamel. Run with `dune exec bench/main.exe`. *)

open Bechamel
open Conman

(* --- reproduction of the paper's tables and figures -------------------------- *)

let reproductions () =
  let ppf = Fmt.stdout in
  Report.table3 ppf ();
  let v = Scenarios.build_vpn () in
  Report.table4 ppf v;
  Report.fig5 ppf v;
  Report.fig2 ppf v;
  let _ = Report.paths9 ppf v in
  Report.fig6 ppf v;
  Report.fig3 ppf ();
  Report.fig7 ppf ();
  Report.fig8 ppf ();
  Report.fig9 ppf ();
  Report.table5 ppf ();
  Report.table6 ppf ();
  Report.security ppf ();
  Report.ablations ppf ();
  Fmt.pf ppf "@."

(* --- micro-benchmarks ---------------------------------------------------------- *)

(* Each table/figure of the paper gets a benchmark of the machinery that
   regenerates it; a few substrate benchmarks cover the data plane the
   evaluation rests on. *)

let bench_table3 =
  Test.make ~name:"table3: GRE abstraction encode"
    (Staged.stage (fun () -> Sexp.to_string (Abstraction.to_sexp (Gre_module.abstraction ()))))

let bench_table4 =
  Test.make ~name:"table4: discovery + showPotential"
    (Staged.stage (fun () -> ignore (Scenarios.build_vpn ())))

(* Reused inputs for the per-run benchmarks (setup excluded from timing). *)
let v_shared = Scenarios.build_vpn ()

let bench_fig5 =
  Test.make ~name:"fig5: potential graph (device A)"
    (Staged.stage (fun () ->
         List.iter
           (fun (m, _) -> ignore (Potential_graph.below (Nm.topology v_shared.Scenarios.nm) m))
           (Topology.modules_of_device (Nm.topology v_shared.Scenarios.nm) "id-A")))

let bench_paths9 =
  Test.make ~name:"paths9/fig6: path enumeration (9 paths)"
    (Staged.stage (fun () ->
         ignore (Nm.find_paths v_shared.Scenarios.nm v_shared.Scenarios.goal)))

let gre_path =
  List.find Scenarios.pure_gre (Nm.find_paths v_shared.Scenarios.nm v_shared.Scenarios.goal)

let mpls_path =
  List.find Scenarios.pure_mpls (Nm.find_paths v_shared.Scenarios.nm v_shared.Scenarios.goal)

let bench_fig2 =
  Test.make ~name:"fig2: GRE path script generation"
    (Staged.stage (fun () ->
         ignore
           (Script_gen.generate (Nm.topology v_shared.Scenarios.nm) v_shared.Scenarios.goal
              gre_path)))

let bench_fig3 =
  Test.make ~name:"fig3: GRE establishment (full coordination)"
    (Staged.stage (fun () ->
         let v = Scenarios.build_vpn () in
         let p = List.find Scenarios.pure_gre (Nm.find_paths v.Scenarios.nm v.Scenarios.goal) in
         ignore (Nm.configure_path v.Scenarios.nm v.Scenarios.goal p)))

let bench_fig7_today =
  Test.make ~name:"fig7a: today's GRE scripts (execution)"
    (Staged.stage (fun () ->
         let tb = Netsim.Testbeds.vpn () in
         ignore (Devconf.Linux_cli.run_script tb.Netsim.Testbeds.ra Devconf.Paper_scripts.gre_a);
         ignore (Devconf.Linux_cli.run_script tb.Netsim.Testbeds.rb Devconf.Paper_scripts.gre_b);
         ignore (Devconf.Linux_cli.run_script tb.Netsim.Testbeds.rc Devconf.Paper_scripts.gre_c)))

let bench_fig7_conman =
  Test.make ~name:"fig7b: CONMan GRE configuration (end-to-end)"
    (Staged.stage (fun () ->
         let v = Scenarios.build_vpn () in
         let p = List.find Scenarios.pure_gre (Nm.find_paths v.Scenarios.nm v.Scenarios.goal) in
         ignore (Nm.configure_path v.Scenarios.nm v.Scenarios.goal p)))

let bench_fig8_conman =
  Test.make ~name:"fig8b: CONMan MPLS configuration (end-to-end)"
    (Staged.stage (fun () ->
         let v = Scenarios.build_vpn () in
         let p = List.find Scenarios.pure_mpls (Nm.find_paths v.Scenarios.nm v.Scenarios.goal) in
         ignore (Nm.configure_path v.Scenarios.nm v.Scenarios.goal p)))

let bench_fig9_conman =
  Test.make ~name:"fig9b: CONMan VLAN tunnel (end-to-end)"
    (Staged.stage (fun () ->
         let v = Scenarios.build_vlan () in
         ignore
           (Nm.achieve_l2 v.Scenarios.vnm ~scope:v.Scenarios.vscope
              ~from_eth:(Ids.v "ETH" "a" "id-SwA") ~to_eth:(Ids.v "ETH" "c" "id-SwC"))))

let bench_table5 =
  Test.make ~name:"table5: script metrics (GRE today)"
    (Staged.stage (fun () -> ignore (Devconf.Metrics.analyze_linux Devconf.Paper_scripts.gre_a)))

let bench_table5_conman =
  Test.make ~name:"table5: script metrics (GRE CONMan)"
    (Staged.stage (fun () ->
         let script =
           Script_gen.generate (Nm.topology v_shared.Scenarios.nm) v_shared.Scenarios.goal gre_path
         in
         ignore (Script_gen.table5_counts script ~device:"id-A")))

let bench_table6 =
  Test.make ~name:"table6: GRE config + message accounting (n=3)"
    (Staged.stage (fun () -> ignore (Report.table6_row_gre 3)))

(* substrate benchmarks *)

let configured_vpn =
  let v = Scenarios.build_vpn () in
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal mpls_path in
  ignore (Scenarios.vpn_reachable v);
  v

let bench_dataplane_ping =
  Test.make ~name:"substrate: ping across configured MPLS VPN"
    (Staged.stage (fun () ->
         ignore
           (Netsim.Ping.reachable configured_vpn.Scenarios.tb.Netsim.Testbeds.vpn_net
              ~from:configured_vpn.Scenarios.tb.Netsim.Testbeds.host1
              ~src:(Packet.Ipv4_addr.of_string "10.0.1.2")
              ~dst:(Packet.Ipv4_addr.of_string "10.0.2.2")
              ())))

let bench_wire_codec =
  let msg =
    Wire.Convey
      {
        src = Ids.v "GRE" "l" "id-A";
        dst = Ids.v "GRE" "n" "id-C";
        payload =
          Peer_msg.Gre_params { pipe = "P1"; ikey = 1001l; okey = 2001l; use_seq = true; use_csum = true };
      }
  in
  let encoded = Wire.encode msg in
  Test.make ~name:"substrate: wire decode (convey)"
    (Staged.stage (fun () -> ignore (Wire.decode encoded)))

let bench_ipv4_codec =
  let pkt =
    Packet.Ipv4.encode
      (Packet.Ipv4.make ~proto:Packet.Ip_proto.Udp
         ~src:(Packet.Ipv4_addr.of_string "10.0.0.1")
         ~dst:(Packet.Ipv4_addr.of_string "10.0.0.2")
         ())
      (Bytes.create 512)
  in
  Test.make ~name:"substrate: IPv4 decode (512B payload)"
    (Staged.stage (fun () -> ignore (Packet.Ipv4.decode pkt)))

let diamond_shared = Scenarios.build_diamond ()

let bench_full_search =
  Test.make ~name:"ablation: full path search (diamond)"
    (Staged.stage (fun () ->
         ignore
           (Path_finder.find (Nm.topology diamond_shared.Scenarios.dnm)
              diamond_shared.Scenarios.dgoal)))

let bench_hierarchical_search =
  Test.make ~name:"ablation: hierarchical path search (diamond)"
    (Staged.stage (fun () ->
         ignore
           (Path_finder.find_hierarchical (Nm.topology diamond_shared.Scenarios.dnm)
              diamond_shared.Scenarios.dgoal)))

let bench_secure_vpn =
  Test.make ~name:"extension: IPsec VPN (ESP + IKE over data plane)"
    (Staged.stage (fun () ->
         let v = Scenarios.build_vpn ~secure:true () in
         let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
         let p = List.find Scenarios.secure paths in
         ignore (Nm.configure_path v.Scenarios.nm v.Scenarios.goal p)))

let bench_lossy_configure =
  Test.make ~name:"robustness: GRE configuration at 30% mgmt loss"
    (Staged.stage (fun () ->
         let v = Scenarios.build_vpn () in
         Mgmt.Faults.set_drop v.Scenarios.faults 0.3;
         let p = List.find Scenarios.pure_gre (Nm.find_paths v.Scenarios.nm v.Scenarios.goal) in
         ignore (Nm.configure_path v.Scenarios.nm v.Scenarios.goal p)))

let bench_raw_channel =
  Test.make ~name:"substrate: raw-channel flooded showActual"
    (Staged.stage (fun () ->
         let v = Scenarios.build_vpn ~channel:`Raw () in
         ignore (Nm.show_actual v.Scenarios.nm "id-C")))

let all_tests =
  Test.make_grouped ~name:"conman"
    [
      bench_table3;
      bench_table4;
      bench_fig5;
      bench_paths9;
      bench_fig2;
      bench_fig3;
      bench_fig7_today;
      bench_fig7_conman;
      bench_fig8_conman;
      bench_fig9_conman;
      bench_table5;
      bench_table5_conman;
      bench_table6;
      bench_dataplane_ping;
      bench_wire_codec;
      bench_ipv4_codec;
      bench_raw_channel;
      bench_lossy_configure;
      bench_secure_vpn;
      bench_full_search;
      bench_hierarchical_search;
    ]

let run_benchmarks () =
  print_endline "\n===== micro-benchmarks (bechamel, ns/run) =====";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] all_tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ x ] -> x | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Printf.printf "%-60s %14.0f ns/run\n" name est) rows

(* --- self-healing data points (BENCH_selfheal.json) ---------------------------- *)

(* One scripted incident on the diamond testbed: the chosen core uplink is
   cut at a known virtual time and the reconciliation loop repairs around
   it. The numbers that matter for the perf trajectory — repair latency in
   virtual time, frames lost while converging, management messages spent
   reconfiguring — are emitted machine-readable. *)
let selfheal_datapoints () =
  let d = Scenarios.build_diamond () in
  let nm = d.Scenarios.dnm in
  let chosen =
    match Nm.achieve nm d.Scenarios.dgoal with
    | Ok (_, path, _) ->
        List.find
          (fun (v : Path_finder.visit) ->
            let dev = v.Path_finder.v_mod.Ids.dev in
            dev = "id-B1" || dev = "id-B2")
          path.Path_finder.visits
        |> fun v -> v.Path_finder.v_mod.Ids.dev
    | Error e -> failwith ("selfheal bench: achieve: " ^ e)
  in
  let seg_name = if chosen = "id-B1" then "A--B1" else "A--B2" in
  let seg = Netsim.Net.find_segment_exn d.Scenarios.dtb.Netsim.Testbeds.dia_net seg_name in
  let cut_at = 1_000_000_000L in
  Netsim.Link.flap ~cycles:1 seg ~first_down_ns:cut_at ~down_ns:3_000_000_000L
    ~up_ns:1_000_000_000L;
  let sent_before = Nm.stats_sent nm in
  let mon = Monitor.create nm in
  Monitor.run mon ~ticks:10;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let repaired_at =
    List.find_map
      (fun (e : Monitor.event) ->
        if contains e.Monitor.ev_what "repaired" then Some e.Monitor.ev_time else None)
      (Monitor.events mon)
  in
  let latency = Option.map (fun t -> Int64.sub t cut_at) repaired_at in
  let json =
    Printf.sprintf
      "{\n\
      \  \"scenario\": \"diamond core-link cut under reconciliation loop\",\n\
      \  \"repair_latency_ns\": %s,\n\
      \  \"frames_lost\": %d,\n\
      \  \"reconfig_messages\": %d,\n\
      \  \"repairs\": %d,\n\
      \  \"resyncs\": %d,\n\
      \  \"escalations\": %d,\n\
      \  \"link_flaps\": %d,\n\
      \  \"reachable_after\": %b\n\
       }\n"
      (match latency with Some l -> Int64.to_string l | None -> "null")
      (Netsim.Link.drop_count seg "cut")
      (Nm.stats_sent nm - sent_before)
      (Monitor.repairs mon) (Monitor.resyncs mon) (Monitor.escalations mon)
      (Netsim.Link.flaps seg)
      (Scenarios.diamond_reachable d)
  in
  let oc = open_out "BENCH_selfheal.json" in
  output_string oc json;
  close_out oc;
  print_endline "\n===== self-healing data points (BENCH_selfheal.json) =====";
  print_string json

(* --- fault-localization data points (BENCH_diagnose.json) ----------------------- *)

(* Three scripted faults on the VPN testbed, each localized purely from
   scraped showPerf counters (the NM never peeks at simulator state), plus
   a diamond incident where a telemetry-equipped Monitor must pick its
   first repair rung from the diagnosis. Reported per fault: the expected
   and diagnosed root cause, and the detection latency in virtual time
   (fault injection to first correct top-ranked diagnosis). *)
let diagnose_datapoints () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let matches expected (v : Diagnose.verdict) =
    match (expected, v) with
    | "cut_link", Diagnose.Cut_link _ -> true
    | "misconfigured_module", Diagnose.Misconfigured_module _ -> true
    | "lossy_segment", Diagnose.Lossy_segment _ -> true
    | "unreachable_agent", Diagnose.Unreachable_agent _ -> true
    | _ -> false
  in
  let scenario ~name ~expected ~pick ~inject =
    let v = Scenarios.build_vpn () in
    let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
    let path = List.find pick paths in
    let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal path in
    let tel = Telemetry.create ~scope:v.Scenarios.scope v.Scenarios.nm in
    (* several exchanges per scrape so partial loss shows as a partial
       delta rather than an all-or-nothing one *)
    let pump () =
      for _ = 1 to 4 do
        ignore (Scenarios.vpn_reachable v)
      done
    in
    for _ = 1 to 2 do
      pump ();
      Telemetry.scrape tel
    done;
    let now () =
      Netsim.Event_queue.now (Netsim.Net.eq v.Scenarios.tb.Netsim.Testbeds.vpn_net)
    in
    inject v;
    let fault_at = now () in
    let max_rounds = 8 in
    let rec detect round =
      if round > max_rounds then (None, max_rounds)
      else begin
        pump ();
        Telemetry.scrape tel;
        match Telemetry.diagnose_path tel path with
        | d :: _ when matches expected d.Diagnose.verdict ->
            (Some (Int64.sub (now ()) fault_at), round)
        | _ -> detect (round + 1)
      end
    in
    let latency, rounds = detect 1 in
    let top =
      match Telemetry.diagnose_path tel path with
      | d :: _ -> Fmt.str "%a" Diagnose.pp_verdict d.Diagnose.verdict
      | [] -> "none"
    in
    (name, expected, top, latency, rounds)
  in
  let vpn_seg v =
    Netsim.Net.find_segment_exn v.Scenarios.tb.Netsim.Testbeds.vpn_net "A--B"
  in
  let results =
    [
      scenario ~name:"core link cut" ~expected:"cut_link" ~pick:Scenarios.pure_gre
        ~inject:(fun v -> Netsim.Link.cut (vpn_seg v));
      scenario ~name:"MPLS xconnect erased on transit router" ~expected:"misconfigured_module"
        ~pick:Scenarios.pure_mpls ~inject:(fun v ->
          Hashtbl.iter
            (fun _ (ilm : Netsim.Device.ilm) -> ilm.Netsim.Device.ilm_xc <- None)
            v.Scenarios.tb.Netsim.Testbeds.rb.Netsim.Device.mpls.Netsim.Device.ilm_table);
      scenario ~name:"seeded 50% loss on core segment" ~expected:"lossy_segment"
        ~pick:Scenarios.pure_gre ~inject:(fun v ->
          Netsim.Link.set_seed (vpn_seg v) 7L;
          Netsim.Link.set_loss (vpn_seg v) 0.5);
    ]
  in
  let correct = List.length (List.filter (fun (_, _, _, l, _) -> l <> None) results) in
  let accuracy = float_of_int correct /. float_of_int (List.length results) in
  (* the diamond incident: the telemetry-equipped Monitor must diagnose the
     cut and reroute first, not burn a rung on resync *)
  let d = Scenarios.build_diamond () in
  let nm = d.Scenarios.dnm in
  let chosen =
    match Nm.achieve nm d.Scenarios.dgoal with
    | Ok (_, path, _) ->
        List.find
          (fun (v : Path_finder.visit) ->
            let dev = v.Path_finder.v_mod.Ids.dev in
            dev = "id-B1" || dev = "id-B2")
          path.Path_finder.visits
        |> fun v -> v.Path_finder.v_mod.Ids.dev
    | Error e -> failwith ("diagnose bench: achieve: " ^ e)
  in
  let seg_name = if chosen = "id-B1" then "A--B1" else "A--B2" in
  let seg = Netsim.Net.find_segment_exn d.Scenarios.dtb.Netsim.Testbeds.dia_net seg_name in
  Netsim.Link.flap ~cycles:1 seg ~first_down_ns:1_000_000_000L ~down_ns:3_000_000_000L
    ~up_ns:1_000_000_000L;
  let tel = Telemetry.create ~scope:d.Scenarios.dscope nm in
  let mon = Monitor.create ~telemetry:tel nm in
  Monitor.run mon ~ticks:10;
  let first_action =
    match
      List.find_opt (fun (e : Monitor.event) -> contains e.Monitor.ev_what "diagnosed")
        (Monitor.events mon)
    with
    | Some e when contains e.Monitor.ev_what "rerouting" -> "reroute"
    | Some _ -> "resync"
    | None -> "none"
  in
  let scenario_json (name, expected, top, latency, rounds) =
    Printf.sprintf
      "    {\n\
      \      \"name\": \"%s\",\n\
      \      \"expected\": \"%s\",\n\
      \      \"diagnosed\": \"%s\",\n\
      \      \"correct\": %b,\n\
      \      \"detection_latency_ns\": %s,\n\
      \      \"scrape_rounds_to_detect\": %d\n\
      \    }"
      name expected top (latency <> None)
      (match latency with Some l -> Int64.to_string l | None -> "null")
      rounds
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"scenarios\": [\n\
       %s\n\
      \  ],\n\
      \  \"localization_accuracy\": %.2f,\n\
      \  \"monitor_first_action\": \"%s\",\n\
      \  \"monitor_repairs\": %d,\n\
      \  \"monitor_resyncs\": %d,\n\
      \  \"monitor_reachable_after\": %b\n\
       }\n"
      (String.concat ",\n" (List.map scenario_json results))
      accuracy first_action (Monitor.repairs mon) (Monitor.resyncs mon)
      (Scenarios.diamond_reachable d)
  in
  let oc = open_out "BENCH_diagnose.json" in
  output_string oc json;
  close_out oc;
  print_endline "\n===== fault-localization data points (BENCH_diagnose.json) =====";
  print_string json

(* --- chaos data points (BENCH_chaos.json) --------------------------------------- *)

(* A 20-seed quick soak of the chaos engine (every invariant must hold on
   every seed — the headline number is [violations] = 0), plus a shrinker
   demo: with the oscillation bound deliberately weakened to zero, a
   generated schedule "fails", and the shrinker must reduce it to a tiny
   repro whose serialised form still reproduces the violation. *)
let chaos_datapoints () =
  let soak_ticks = 6 in
  let seeds = List.init 20 (fun i -> i + 1) in
  let per_seed =
    List.map
      (fun seed ->
        let sched = Chaos.Schedule.generate ~seed ~ticks:soak_ticks () in
        let r = Chaos.Engine.run sched in
        let fails = List.map (fun v -> v.Chaos.Engine.name) (Chaos.Engine.failures r) in
        (seed, List.length sched.Chaos.Schedule.events, r, fails))
      seeds
  in
  let violations = List.length (List.filter (fun (_, _, _, fails) -> fails <> []) per_seed) in
  (* the shrinker demo: weaken one invariant, shrink the resulting failure *)
  let weak = { Chaos.Engine.default_config with Chaos.Engine.oscillation_bound = Some 0 } in
  let failing s = Chaos.Engine.failures (Chaos.Engine.run ~config:weak s) <> [] in
  (* the demo needs a schedule that provokes at least one reroute: scan
     past the soak seeds for the first one the weakened invariant rejects *)
  let rec find_demo seed =
    let d = Chaos.Schedule.generate ~seed ~ticks:soak_ticks () in
    if failing d || seed >= 60 then (seed, d) else find_demo (seed + 1)
  in
  let demo_seed, demo = find_demo 21 in
  let demo_failed = failing demo in
  let { Chaos.Shrink.minimized; runs } = Chaos.Shrink.minimize ~failing demo in
  let replay_reproduces =
    failing (Chaos.Schedule.of_string (Chaos.Schedule.to_string minimized))
  in
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let seed_json (seed, events, (r : Chaos.Engine.report), fails) =
    Printf.sprintf
      "    { \"seed\": %d, \"events\": %d, \"ok\": %b, \"repairs\": %d, \"nm_crashes\": %d, \
       \"converged\": %b, \"failed_invariants\": [%s] }"
      seed events (fails = []) r.Chaos.Engine.total_repairs r.Chaos.Engine.nm_crashes
      (r.Chaos.Engine.converged_tick <> None)
      (String.concat ", " (List.map (fun n -> "\"" ^ escape n ^ "\"") fails))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"soak\": {\n\
      \    \"seeds\": %d,\n\
      \    \"ticks\": %d\n\
      \  },\n\
      \  \"violations\": %d,\n\
      \  \"per_seed\": [\n\
       %s\n\
      \  ],\n\
      \  \"weakened\": {\n\
      \    \"invariant\": \"oscillation (bound forced to 0)\",\n\
      \    \"seed\": %d,\n\
      \    \"initial_failed\": %b,\n\
      \    \"initial_events\": %d,\n\
      \    \"minimized_events\": %d,\n\
      \    \"shrink_runs\": %d,\n\
      \    \"replay_reproduces\": %b,\n\
      \    \"minimized_repro\": \"%s\"\n\
      \  }\n\
       }\n"
      (List.length seeds) soak_ticks violations
      (String.concat ",\n" (List.map seed_json per_seed))
      demo_seed demo_failed
      (List.length demo.Chaos.Schedule.events)
      (List.length minimized.Chaos.Schedule.events)
      runs replay_reproduces
      (escape (Chaos.Schedule.to_string minimized))
  in
  let oc = open_out "BENCH_chaos.json" in
  output_string oc json;
  close_out oc;
  print_endline "\n===== chaos soak data points (BENCH_chaos.json) =====";
  print_string json

(* --- HA failover data points (BENCH_ha.json) ------------------------------------ *)

(* Two handcrafted incidents against the HA pair, run through the chaos
   engine so every invariant is checked: a primary crash (the standby must
   detect the silence and promote, replaying whatever the primary died
   without seeing confirmed) and an NM<->standby partition (the standby
   promotes on suspicion while the old primary is alive — epoch fencing
   must keep the brains apart). The headline gates: [split_brain_count]
   and [lost_intents] must be 0, and the crash scenario must report a
   finite detection latency in ticks. *)
let ha_datapoints () =
  let scenarios =
    [
      ( "primary crash -> automatic failover",
        {
          Chaos.Schedule.seed = 0;
          ticks = 8;
          tail = 12;
          events = [ { Chaos.Schedule.at = 2; fault = Chaos.Schedule.Nm_failover { ticks = 6 } } ];
        } );
      ( "NM <-> standby partition (split-brain pressure)",
        {
          Chaos.Schedule.seed = 0;
          ticks = 8;
          tail = 12;
          events = [ { Chaos.Schedule.at = 2; fault = Chaos.Schedule.Ha_partition { ticks = 4 } } ];
        } );
    ]
  in
  let results =
    List.map
      (fun (name, sched) ->
        let r = Chaos.Engine.run sched in
        let fails = List.map (fun v -> v.Chaos.Engine.name) (Chaos.Engine.failures r) in
        (name, r, fails))
      scenarios
  in
  let crash_detection =
    match results with (_, r, _) :: _ -> r.Chaos.Engine.ha.Chaos.Engine.detection_ticks | [] -> None
  in
  let total f = List.fold_left (fun acc (_, r, _) -> acc + f r.Chaos.Engine.ha) 0 results in
  let scenario_json (name, (r : Chaos.Engine.report), fails) =
    let h = r.Chaos.Engine.ha in
    Printf.sprintf
      "    {\n\
      \      \"name\": \"%s\",\n\
      \      \"ok\": %b,\n\
      \      \"failovers\": %d,\n\
      \      \"detection_ticks\": %s,\n\
      \      \"replayed\": %d,\n\
      \      \"split_brain_count\": %d,\n\
      \      \"lost_intents\": %d,\n\
      \      \"final_epoch\": %d,\n\
      \      \"converged\": %b\n\
      \    }"
      name (fails = []) h.Chaos.Engine.failovers
      (match h.Chaos.Engine.detection_ticks with Some t -> string_of_int t | None -> "null")
      h.Chaos.Engine.replayed h.Chaos.Engine.split_brain_count h.Chaos.Engine.lost_intents
      h.Chaos.Engine.final_epoch
      (r.Chaos.Engine.converged_tick <> None)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"scenarios\": [\n\
       %s\n\
      \  ],\n\
      \  \"failover_detection_ticks\": %s,\n\
      \  \"requests_replayed\": %d,\n\
      \  \"split_brain_count\": %d,\n\
      \  \"lost_intents\": %d,\n\
      \  \"invariant_violations\": %d\n\
       }\n"
      (String.concat ",\n" (List.map scenario_json results))
      (match crash_detection with Some t -> string_of_int t | None -> "null")
      (total (fun h -> h.Chaos.Engine.replayed))
      (total (fun h -> h.Chaos.Engine.split_brain_count))
      (total (fun h -> h.Chaos.Engine.lost_intents))
      (List.length (List.filter (fun (_, _, fails) -> fails <> []) results))
  in
  let oc = open_out "BENCH_ha.json" in
  output_string oc json;
  close_out oc;
  print_endline "\n===== HA failover data points (BENCH_ha.json) =====";
  print_string json

(* --- overload data points (BENCH_overload.json) --------------------------------- *)

(* Three experiments behind the overload-protection claims:

   1. A 20-seed soak where every schedule is guaranteed a telemetry storm
      (an Overload event is injected when the generator did not draw one).
      Gates: zero P0/P1 frames shed anywhere, zero spurious failovers
      (promotions in schedules with no HA fault — a starved failure
      detector faking a dead primary), every run converged, and a nonzero
      P3 shed count proving the storms actually bit.
   2. Failure detection under load: the handcrafted primary-crash incident
      with and without a saturating storm around it — the detection
      latency in ticks must not degrade.
   3. A widened testbed (8-router chain) under a sustained direct storm,
      measuring shed volume at scale and the telemetry poller's
      shed-feedback backoff (base -> final scrape period). *)
let overload_datapoints () =
  let soak_ticks = 6 in
  let seeds = List.init 20 (fun i -> i + 1) in
  let has_overload s =
    List.exists
      (fun (e : Chaos.Schedule.event) ->
        match e.Chaos.Schedule.fault with Chaos.Schedule.Overload _ -> true | _ -> false)
      s.Chaos.Schedule.events
  in
  let has_ha s =
    List.exists
      (fun (e : Chaos.Schedule.event) ->
        match e.Chaos.Schedule.fault with
        | Chaos.Schedule.Nm_crash | Chaos.Schedule.Nm_failover _ | Chaos.Schedule.Ha_partition _
        | Chaos.Schedule.Standby_crash _ ->
            true
        | _ -> false)
      s.Chaos.Schedule.events
  in
  let force_overload s =
    if has_overload s then s
    else
      let ev =
        { Chaos.Schedule.at = 1; fault = Chaos.Schedule.Overload { intensity = 0.6; ticks = 3 } }
      in
      {
        s with
        Chaos.Schedule.events =
          List.stable_sort
            (fun (a : Chaos.Schedule.event) b -> compare a.Chaos.Schedule.at b.Chaos.Schedule.at)
            (ev :: s.Chaos.Schedule.events);
      }
  in
  let per_seed =
    List.map
      (fun seed ->
        let sched = force_overload (Chaos.Schedule.generate ~seed ~ticks:soak_ticks ()) in
        let r = Chaos.Engine.run sched in
        let fails = List.map (fun v -> v.Chaos.Engine.name) (Chaos.Engine.failures r) in
        (seed, sched, r, fails))
      seeds
  in
  let violations = List.length (List.filter (fun (_, _, _, fails) -> fails <> []) per_seed) in
  let converged =
    List.length (List.filter (fun (_, _, r, _) -> r.Chaos.Engine.converged_tick <> None) per_seed)
  in
  let spurious_failovers =
    List.fold_left
      (fun acc (_, sched, r, _) ->
        if (not (has_ha sched)) && r.Chaos.Engine.ha.Chaos.Engine.failovers > 0 then acc + 1
        else acc)
      0 per_seed
  in
  let sum f = List.fold_left (fun acc (_, _, r, _) -> acc + f r.Chaos.Engine.overload) 0 per_seed in
  (* detection latency with and without the storm *)
  let detect events =
    let r = Chaos.Engine.run { Chaos.Schedule.seed = 0; ticks = 8; tail = 12; events } in
    r.Chaos.Engine.ha.Chaos.Engine.detection_ticks
  in
  let crash = { Chaos.Schedule.at = 2; fault = Chaos.Schedule.Nm_failover { ticks = 6 } } in
  let baseline_detect = detect [ crash ] in
  let storm_detect =
    detect
      [
        { Chaos.Schedule.at = 0; fault = Chaos.Schedule.Overload { intensity = 0.8; ticks = 7 } };
        crash;
      ]
  in
  let delta =
    match (baseline_detect, storm_detect) with Some a, Some b -> Some (b - a) | _ -> None
  in
  (* the widened testbed: sustained storm on an 8-router chain *)
  let n_wide = 8 in
  let c = Scenarios.build_chain n_wide in
  let wide_net = c.Scenarios.ctb.Netsim.Testbeds.chain_net in
  let adm = c.Scenarios.cadmission in
  let tel = Telemetry.create ~scope:c.Scenarios.cscope c.Scenarios.cnm in
  Telemetry.set_shed_probe tel (fun () -> Mgmt.Admission.lost_total adm);
  let base_period = Telemetry.period_ns tel in
  Mgmt.Admission.reset_counters adm;
  let wide_storm = ref 0 in
  for t = 0 to 7 do
    for i = 1 to 800 do
      incr wide_storm;
      Mgmt.Channel.send c.Scenarios.cchan ~src:Scenarios.nm_station_id
        ~dst:(List.nth c.Scenarios.cscope (i mod List.length c.Scenarios.cscope))
        (Wire.encode (Wire.Show_perf_req { req = 910_000_000 + (t * 1000) + i }))
    done;
    ignore
      (Netsim.Net.run_until wide_net
         ~deadline:
           (Int64.add (Netsim.Event_queue.now (Netsim.Net.eq wide_net)) 250_000_000L));
    Telemetry.maybe_scrape tel
  done;
  let wc = Mgmt.Admission.counters adm in
  let seed_json (seed, _, (r : Chaos.Engine.report), fails) =
    let o = r.Chaos.Engine.overload in
    Printf.sprintf
      "    { \"seed\": %d, \"ok\": %b, \"storm_frames\": %d, \"p0_shed\": %d, \"p1_shed\": %d, \
       \"p3_shed\": %d, \"converged\": %b }"
      seed (fails = []) o.Chaos.Engine.storm_frames o.Chaos.Engine.p0_shed
      o.Chaos.Engine.p1_shed
      (o.Chaos.Engine.p3_shed + o.Chaos.Engine.p3_expired)
      (r.Chaos.Engine.converged_tick <> None)
  in
  let opt_int = function Some t -> string_of_int t | None -> "null" in
  let json =
    Printf.sprintf
      "{\n\
      \  \"soak\": {\n\
      \    \"seeds\": %d,\n\
      \    \"ticks\": %d\n\
      \  },\n\
      \  \"violations\": %d,\n\
      \  \"converged\": %d,\n\
      \  \"spurious_failovers\": %d,\n\
      \  \"storm_frames\": %d,\n\
      \  \"p0_shed\": %d,\n\
      \  \"p1_shed\": %d,\n\
      \  \"p2_shed\": %d,\n\
      \  \"p3_shed\": %d,\n\
      \  \"p3_expired\": %d,\n\
      \  \"per_seed\": [\n\
       %s\n\
      \  ],\n\
      \  \"failover_under_storm\": {\n\
      \    \"baseline_detection_ticks\": %s,\n\
      \    \"storm_detection_ticks\": %s,\n\
      \    \"delta_ticks\": %s\n\
      \  },\n\
      \  \"wide_testbed\": {\n\
      \    \"devices\": %d,\n\
      \    \"storm_frames\": %d,\n\
      \    \"p3_shed\": %d,\n\
      \    \"p3_expired\": %d,\n\
      \    \"p3_queue_high_water\": %d,\n\
      \    \"telemetry_base_period_ns\": %Ld,\n\
      \    \"telemetry_final_period_ns\": %Ld,\n\
      \    \"telemetry_backoffs\": %d\n\
      \  }\n\
       }\n"
      (List.length seeds) soak_ticks violations converged spurious_failovers
      (sum (fun o -> o.Chaos.Engine.storm_frames))
      (sum (fun o -> o.Chaos.Engine.p0_shed))
      (sum (fun o -> o.Chaos.Engine.p1_shed))
      (sum (fun o -> o.Chaos.Engine.p2_shed))
      (sum (fun o -> o.Chaos.Engine.p3_shed))
      (sum (fun o -> o.Chaos.Engine.p3_expired))
      (String.concat ",\n" (List.map seed_json per_seed))
      (opt_int baseline_detect) (opt_int storm_detect) (opt_int delta) n_wide !wide_storm
      (wc.(3).Mgmt.Admission.shed + wc.(3).Mgmt.Admission.expired)
      wc.(3).Mgmt.Admission.expired
      wc.(3).Mgmt.Admission.queue_high_water base_period (Telemetry.period_ns tel)
      (Telemetry.backoffs tel)
  in
  let oc = open_out "BENCH_overload.json" in
  output_string oc json;
  close_out oc;
  print_endline "\n===== overload data points (BENCH_overload.json) =====";
  print_string json

let quick = Array.exists (fun a -> a = "--quick" || a = "quick") Sys.argv

(* --- federation data points (BENCH_federation.json) ----------------------------- *)

(* The acceptance soak for federated multi-NM management: 20 seeded
   two-domain schedules, each with a forced [Peer_nm_crash] and a forced
   [Inter_domain_partition] on top of background channel faults. The
   headline gates: every seed converges, no stitched pipe is ever left
   half-configured, and neither NM writes a single byte of configuration
   outside its own domain. Quick mode shortens the schedules but keeps
   all 20 seeds, since the CI gates require full convergence counts. *)
let federation_datapoints () =
  let soak_ticks = if quick then 6 else 10 in
  let seeds = List.init 20 (fun i -> i + 1) in
  let per_seed =
    List.map
      (fun seed ->
        let sched = Chaos.Fed_engine.generate ~seed ~ticks:soak_ticks () in
        let r = Chaos.Fed_engine.run sched in
        let fails = List.map (fun v -> v.Chaos.Fed_engine.name) (Chaos.Fed_engine.failures r) in
        (seed, List.length sched.Chaos.Schedule.events, r, fails))
      seeds
  in
  let sum f = List.fold_left (fun acc (_, _, r, _) -> acc + f r) 0 per_seed in
  let converged =
    List.length
      (List.filter (fun (_, _, r, _) -> r.Chaos.Fed_engine.converged_tick <> None) per_seed)
  in
  let violations = List.length (List.filter (fun (_, _, _, fails) -> fails <> []) per_seed) in
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let seed_json (seed, events, (r : Chaos.Fed_engine.report), fails) =
    Printf.sprintf
      "    { \"seed\": %d, \"events\": %d, \"ok\": %b, \"converged\": %b, \"replans\": %d, \
       \"backouts\": %d, \"relays\": %d, \"half_configured\": %d, \"foreign_writes\": %d, \
       \"failed_invariants\": [%s] }"
      seed events (fails = [])
      (r.Chaos.Fed_engine.converged_tick <> None)
      r.Chaos.Fed_engine.replans r.Chaos.Fed_engine.backouts r.Chaos.Fed_engine.relays
      r.Chaos.Fed_engine.half_configured r.Chaos.Fed_engine.foreign_writes
      (String.concat ", " (List.map (fun n -> "\"" ^ escape n ^ "\"") fails))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"soak\": {\n\
      \    \"seeds\": %d,\n\
      \    \"ticks\": %d,\n\
      \    \"forced_events\": [\"peer-nm-crash\", \"inter-domain-partition\"]\n\
      \  },\n\
      \  \"converged\": %d,\n\
      \  \"violations\": %d,\n\
      \  \"half_configured_total\": %d,\n\
      \  \"foreign_writes_total\": %d,\n\
      \  \"backouts_total\": %d,\n\
      \  \"relays_total\": %d,\n\
      \  \"per_seed\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (List.length seeds) soak_ticks converged violations
      (sum (fun r -> r.Chaos.Fed_engine.half_configured))
      (sum (fun r -> r.Chaos.Fed_engine.foreign_writes))
      (sum (fun r -> r.Chaos.Fed_engine.backouts))
      (sum (fun r -> r.Chaos.Fed_engine.relays))
      (String.concat ",\n" (List.map seed_json per_seed))
  in
  let oc = open_out "BENCH_federation.json" in
  output_string oc json;
  close_out oc;
  print_endline "\n===== federation soak data points (BENCH_federation.json) =====";
  print_string json

(* --- trace data points (BENCH_trace.json) --------------------------------------- *)

(* The observability acceptance soak. Every federated chaos seed must
   yield ONE connected span tree for its cross-domain goal — a single
   root, zero orphan spans anywhere in either NM's collector — and the
   per-phase latency samples (plan, commit, abort; plus the diamond
   engine's HA failover-detection latency) are merged across seeds into
   percentile summaries. CI gates on [orphan_spans_total] == 0,
   [disconnected_runs] == 0 and the presence of the phase-latency
   percentile fields. *)
let trace_datapoints () =
  let fed_ticks = if quick then 6 else 10 in
  let fed_seeds = List.init 20 (fun i -> i + 1) in
  let fed_runs =
    List.map
      (fun seed -> (seed, Chaos.Fed_engine.run (Chaos.Fed_engine.generate ~seed ~ticks:fed_ticks ())))
      fed_seeds
  in
  let dia_ticks = if quick then 6 else 10 in
  let dia_seeds = List.init 10 (fun i -> i + 1) in
  let dia_runs =
    List.map
      (fun seed -> (seed, Chaos.Engine.run (Chaos.Schedule.generate ~seed ~ticks:dia_ticks ())))
      dia_seeds
  in
  let orphan_spans_total =
    List.fold_left (fun acc (_, r) -> acc + r.Chaos.Fed_engine.orphan_spans) 0 fed_runs
    + List.fold_left (fun acc (_, r) -> acc + r.Chaos.Engine.orphan_spans) 0 dia_runs
  in
  let disconnected_runs =
    List.length (List.filter (fun (_, r) -> not r.Chaos.Fed_engine.trace_connected) fed_runs)
  in
  let total_spans = List.fold_left (fun acc (_, r) -> acc + r.Chaos.Fed_engine.total_spans) 0 fed_runs in
  (* merge raw samples across runs, then take percentiles once *)
  let merged = Hashtbl.create 8 in
  let add samples =
    List.iter
      (fun (k, vs) ->
        let prev = match Hashtbl.find_opt merged k with Some l -> l | None -> [] in
        Hashtbl.replace merged k (prev @ vs))
      samples
  in
  List.iter (fun (_, r) -> add r.Chaos.Fed_engine.phase_samples) fed_runs;
  List.iter (fun (_, r) -> add r.Chaos.Engine.phase_samples) dia_runs;
  let phase_json key =
    let vs = match Hashtbl.find_opt merged key with Some l -> l | None -> [] in
    match vs with
    | [] -> Printf.sprintf "    \"%s\": { \"count\": 0 }" key
    | vs ->
        let arr = Array.of_list (List.sort compare vs) in
        let n = Array.length arr in
        let pct p = arr.(min (n - 1) (int_of_float (float_of_int n *. p))) in
        Printf.sprintf
          "    \"%s\": { \"count\": %d, \"min\": %d, \"max\": %d, \"mean\": %.2f, \"p50\": %d, \
           \"p90\": %d, \"p99\": %d }"
          key n arr.(0)
          arr.(n - 1)
          (float_of_int (List.fold_left ( + ) 0 vs) /. float_of_int n)
          (pct 0.50) (pct 0.90) (pct 0.99)
  in
  let seed_json (seed, (r : Chaos.Fed_engine.report)) =
    Printf.sprintf
      "    { \"seed\": %d, \"spans\": %d, \"orphan_spans\": %d, \"connected\": %b, \
       \"converged\": %b }"
      seed r.Chaos.Fed_engine.total_spans r.Chaos.Fed_engine.orphan_spans
      r.Chaos.Fed_engine.trace_connected
      (r.Chaos.Fed_engine.converged_tick <> None)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"soak\": {\n\
      \    \"federated_seeds\": %d,\n\
      \    \"federated_ticks\": %d,\n\
      \    \"diamond_seeds\": %d,\n\
      \    \"diamond_ticks\": %d\n\
      \  },\n\
      \  \"orphan_spans\": %d,\n\
      \  \"disconnected_runs\": %d,\n\
      \  \"total_spans\": %d,\n\
      \  \"phase_latency_ticks\": {\n\
       %s\n\
      \  },\n\
      \  \"per_seed\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (List.length fed_seeds) fed_ticks (List.length dia_seeds) dia_ticks orphan_spans_total
      disconnected_runs total_spans
      (String.concat ",\n"
         (List.map phase_json
            [ "fed.plan_ticks"; "fed.commit_ticks"; "fed.abort_ticks"; "ha.failover_detect_ticks" ]))
      (String.concat ",\n" (List.map seed_json fed_runs))
  in
  let oc = open_out "BENCH_trace.json" in
  output_string oc json;
  close_out oc;
  print_endline "\n===== trace soak data points (BENCH_trace.json) =====";
  print_string json

let () =
  if quick then begin
    selfheal_datapoints ();
    diagnose_datapoints ();
    chaos_datapoints ();
    ha_datapoints ();
    overload_datapoints ();
    federation_datapoints ();
    trace_datapoints ()
  end
  else begin
    reproductions ();
    run_benchmarks ();
    selfheal_datapoints ();
    diagnose_datapoints ();
    chaos_datapoints ();
    ha_datapoints ();
    overload_datapoints ();
    federation_datapoints ();
    trace_datapoints ()
  end
